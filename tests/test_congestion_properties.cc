/**
 * @file
 * Property tests of the congestion plane (DESIGN.md §8): DCQCN
 * reaction-point invariants under arbitrary CNP/query sequences,
 * CongestionPoint queue-model invariants (a message is never both
 * ECN-marked and dropped by the same queue; lossless traffic is
 * never dropped; an uncongested port is seed-independent), and the
 * SnicMqueue PFC machinery (pause/resume always pair, the storm
 * guard fails over to the counted drop path, and full rings without
 * PFC count `overflow` instead of failing silently).
 */

#include <gtest/gtest.h>

#include <vector>

#include "lynx/gio.hh"
#include "lynx/snic_mqueue.hh"
#include "net/congestion.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using lynx::core::AccelQueue;
using lynx::core::GioMessage;
using lynx::core::MqueueKind;
using lynx::core::MqueueLayout;
using lynx::core::SnicMqueue;
using lynx::core::SnicMqueueConfig;
using lynx::net::CongestionPoint;
using lynx::net::Dcqcn;
using lynx::net::DcqcnConfig;

namespace {

void
expectDcqcnInvariants(const Dcqcn &d)
{
    EXPECT_GE(d.rateGbps(), d.config().minRateGbps);
    EXPECT_LE(d.rateGbps(), d.config().lineRateGbps);
    EXPECT_GE(d.alpha(), 0.0);
    EXPECT_LE(d.alpha(), 1.0);
    EXPECT_LE(d.targetGbps(), d.config().lineRateGbps);
}

} // namespace

/*
 * ----- DCQCN reaction point -----
 */

/** rate ∈ [minRate, lineRate] and alpha ∈ [0, 1] must hold after
 *  every transition, whatever order CNPs and rate queries arrive
 *  in — including adversarial bursts and long silences. */
TEST(DcqcnProperties, InvariantsUnderRandomEventSequences)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        sim::Rng rng(seed);
        DcqcnConfig cfg;
        cfg.lineRateGbps = 0.5 + 0.5 * static_cast<double>(seed);
        cfg.minRateGbps = cfg.lineRateGbps / 64.0;
        Dcqcn d(cfg, 0);
        sim::Tick now = 0;
        for (int ev = 0; ev < 400; ++ev) {
            // Gaps from back-to-back to multi-epoch silences.
            now += rng.below(500_us);
            if (rng.chance(0.5))
                d.onCnp(now);
            else
                d.rateAt(now);
            expectDcqcnInvariants(d);
        }
    }
}

/** A blast of back-to-back CNPs pins the rate at the floor — never
 *  below it, never to zero. */
TEST(DcqcnProperties, CnpBlastStopsAtRateFloor)
{
    DcqcnConfig cfg;
    Dcqcn d(cfg, 0);
    for (int i = 0; i < 200; ++i) {
        d.onCnp(static_cast<sim::Tick>(i) * 1_us);
        expectDcqcnInvariants(d);
    }
    EXPECT_DOUBLE_EQ(d.rateGbps(), cfg.minRateGbps);
    EXPECT_EQ(d.cuts(), 200u);
}

/** A long CNP-free period recovers the flow all the way back to (and
 *  never past) line rate, and decays alpha toward zero. */
TEST(DcqcnProperties, QuietPeriodRecoversToLineRate)
{
    DcqcnConfig cfg;
    Dcqcn d(cfg, 0);
    for (int i = 0; i < 50; ++i)
        d.onCnp(static_cast<sim::Tick>(i) * 10_us);
    double cutRate = d.rateGbps();
    EXPECT_LT(cutRate, cfg.lineRateGbps);
    double highAlpha = d.alpha();

    // Hyper increase adds haiGbps per epoch once past 2F epochs, so
    // a second's silence dwarfs the line rate's worth of recovery.
    EXPECT_DOUBLE_EQ(d.rateAt(1'000_ms), cfg.lineRateGbps);
    EXPECT_LT(d.alpha(), highAlpha * 0.01);
    EXPECT_GE(d.alpha(), 0.0);
    EXPECT_GT(d.increases(), 0u);
}

/** Recovery between two observations is monotonic: the allowed rate
 *  never decreases without a CNP. */
TEST(DcqcnProperties, RateRecoveryIsMonotoneWithoutCnps)
{
    Dcqcn d({}, 0);
    for (int i = 0; i < 20; ++i)
        d.onCnp(static_cast<sim::Tick>(i) * 5_us);
    double prev = d.rateGbps();
    for (sim::Tick t = 100_us; t <= 20_ms; t += 100_us) {
        double r = d.rateAt(t);
        EXPECT_GE(r, prev);
        prev = r;
    }
}

/** paceTime is the serialization time at the current allowed rate. */
TEST(DcqcnProperties, PaceTimeMatchesAllowedRate)
{
    Dcqcn d({}, 0);
    d.onCnp(1_us);
    sim::Tick now = 2_us;
    double rate = d.rateAt(now);
    sim::Tick pace = d.paceTime(4096, now);
    EXPECT_EQ(pace, static_cast<sim::Tick>(4096.0 * 8.0 / rate));
}

/*
 * ----- CongestionPoint queue model -----
 */

/** No verdict may ever carry both marked and dropped: tail-drop
 *  short-circuits the marking draw. Hammered across seeds with a
 *  queue small enough that both outcomes are common. */
TEST(CongestionPointProperties, NeverBothMarkedAndDropped)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        CongestionPoint::Config cfg;
        cfg.gbps = 1.0;
        cfg.queueBytes = 16 * 1024;
        cfg.kminBytes = 2 * 1024;
        cfg.kmaxBytes = 8 * 1024;
        cfg.pmax = 0.5;
        cfg.seed = seed;
        CongestionPoint port(cfg);
        sim::Rng rng(seed * 977);
        sim::Tick arrival = 0;
        std::uint64_t marks = 0, drops = 0;
        for (int i = 0; i < 2000; ++i) {
            arrival += rng.below(6_us); // ~2x overload at 1 Gb/s
            auto v = port.admit(1024, arrival);
            EXPECT_FALSE(v.marked && v.dropped);
            EXPECT_GE(v.start, arrival);
            marks += v.marked;
            drops += v.dropped;
        }
        // The sweep must actually exercise both outcomes for the
        // exclusion property to mean anything.
        EXPECT_GT(marks, 0u);
        EXPECT_GT(drops, 0u);
        EXPECT_EQ(port.marks(), marks);
        EXPECT_EQ(port.drops(), drops);
    }
}

/** Lossless (RoCE-priority) traffic is never dropped regardless of
 *  queue depth — it queues without bound and is only marked. */
TEST(CongestionPointProperties, LosslessTrafficIsNeverDropped)
{
    CongestionPoint::Config cfg;
    cfg.gbps = 1.0;
    cfg.queueBytes = 8 * 1024;
    cfg.kminBytes = 1024;
    cfg.kmaxBytes = 4 * 1024;
    CongestionPoint port(cfg);
    std::uint64_t marks = 0;
    for (int i = 0; i < 1000; ++i) {
        // Back-to-back arrivals: depth grows far past queueBytes.
        auto v = port.admit(1024, 0, /*lossless=*/true);
        EXPECT_FALSE(v.dropped);
        marks += v.marked;
    }
    EXPECT_EQ(port.drops(), 0u);
    EXPECT_GT(marks, 0u); // deep queue: everything past Kmax marks
}

/** An uncongested port (arrivals spaced at least a serialization
 *  apart) never marks, never drops, and never consults its Rng — so
 *  its verdicts are identical for any seed (the determinism contract
 *  behind the golden timestamps). */
TEST(CongestionPointProperties, UncongestedPortIsSeedIndependent)
{
    CongestionPoint::Config a;
    a.seed = 1;
    CongestionPoint::Config b = a;
    b.seed = 0xdeadbeef;
    CongestionPoint pa(a), pb(b);
    sim::Tick arrival = 0;
    for (int i = 0; i < 500; ++i) {
        arrival += pa.serialization(2048) + 1;
        auto va = pa.admit(2048, arrival);
        auto vb = pb.admit(2048, arrival);
        EXPECT_EQ(va.start, arrival);
        EXPECT_EQ(va.depthBytes, 0u);
        EXPECT_FALSE(va.marked || va.dropped);
        EXPECT_EQ(vb.start, va.start);
        EXPECT_EQ(vb.marked, va.marked);
        EXPECT_EQ(vb.dropped, va.dropped);
    }
}

/** The implicit queue drains at link rate: depth decays to zero over
 *  exactly the busy horizon. */
TEST(CongestionPointProperties, QueueDrainsAtLinkRate)
{
    CongestionPoint::Config cfg;
    cfg.gbps = 8.0; // 1 byte/ns: depth math is exact
    CongestionPoint port(cfg);
    for (int i = 0; i < 10; ++i)
        port.admit(1000, 0, /*lossless=*/true);
    EXPECT_EQ(port.depthAt(0), 10'000u);
    EXPECT_EQ(port.depthAt(4'000), 6'000u);
    EXPECT_EQ(port.depthAt(10'000), 0u);
    EXPECT_EQ(port.depthAt(20'000), 0u);
}

/*
 * ----- PFC on SnicMqueue RX rings -----
 */

namespace {

struct Rig
{
    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};
    MqueueLayout layout{0, 8, 256};
};

std::vector<std::uint8_t>
payload(int i)
{
    return std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(i));
}

} // namespace

/** With PFC on and a (slow) consumer, a burst far larger than the
 *  ring is delivered in full: the pusher pauses instead of dropping,
 *  every pause is paired with a resume, and nothing overflows. */
TEST(PfcProperties, PauseAndResumeAlwaysPair)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.pfc.enabled = true;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);

    constexpr int kMsgs = 64; // 8x the ring
    int accepted = 0;
    auto push = [&]() -> sim::Task {
        for (int i = 0; i < kMsgs; ++i) {
            bool ok = co_await mq.rxPush(
                r.core, payload(i), static_cast<std::uint32_t>(i));
            accepted += ok;
        }
    };
    int drained = 0;
    auto drain = [&]() -> sim::Task {
        while (drained < kMsgs) {
            GioMessage m = co_await gio.recv();
            EXPECT_EQ(m.tag, static_cast<std::uint32_t>(drained));
            ++drained;
            co_await sim::sleep(5_us); // slower than the pusher
        }
    };
    sim::spawn(r.s, push());
    sim::spawn(r.s, drain());
    r.s.run();

    EXPECT_EQ(accepted, kMsgs);
    EXPECT_EQ(drained, kMsgs);
    EXPECT_FALSE(mq.rxPaused());
    EXPECT_EQ(mq.stats().counterValue("overflow"), 0u);
    std::uint64_t pauses = mq.stats().counterValue("pfc_pauses");
    EXPECT_GT(pauses, 0u);
    EXPECT_EQ(mq.stats().counterValue("pfc_resumes"), pauses);
    EXPECT_EQ(mq.stats().counterValue("pfc_storm_breaks"), 0u);
}

/** A dead consumer must not wedge the pusher forever: the storm
 *  guard breaks the pause episode after pauseTimeout and the push
 *  fails over to the counted drop path. Pause/resume still pair. */
TEST(PfcProperties, StormGuardBreaksPauseOnDeadConsumer)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.pfc.enabled = true;
    cfg.pfc.pauseTimeout = 50_us;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);

    int accepted = 0, rejected = 0;
    sim::Tick doneAt = 0;
    auto push = [&]() -> sim::Task {
        for (int i = 0; i < 12; ++i) { // ring holds 8
            bool ok = co_await mq.rxPush(
                r.core, payload(i), static_cast<std::uint32_t>(i));
            (ok ? accepted : rejected) += 1;
        }
        doneAt = r.s.now();
    };
    sim::spawn(r.s, push());
    r.s.run();

    EXPECT_EQ(accepted, 8);
    EXPECT_EQ(rejected, 4);
    EXPECT_FALSE(mq.rxPaused());
    EXPECT_EQ(mq.stats().counterValue("overflow"), 4u);
    EXPECT_EQ(mq.stats().counterValue("pfc_storm_breaks"), 4u);
    EXPECT_EQ(mq.stats().counterValue("pfc_pauses"),
              mq.stats().counterValue("pfc_resumes"));
    // Each rejected push ate one pauseTimeout episode, no more: the
    // guard bounds how long a dead accelerator can stall ingress.
    EXPECT_GE(doneAt, 4 * 50_us);
    EXPECT_LT(doneAt, 4 * 50_us + 100_us);
}

/** Regression (silent-overflow fix): with PFC off, pushes into a
 *  full ring return false AND count `overflow` — the seed used to
 *  report only `rx_full`, so ring-capacity drops were invisible to
 *  the drop-accounting dashboards. */
TEST(PfcProperties, OverflowCountedWithoutPfc)
{
    Rig r;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, {});

    int accepted = 0, rejected = 0;
    auto push = [&]() -> sim::Task {
        for (int i = 0; i < 11; ++i) { // ring holds 8
            bool ok = co_await mq.rxPush(
                r.core, payload(i), static_cast<std::uint32_t>(i));
            (ok ? accepted : rejected) += 1;
        }
    };
    sim::spawn(r.s, push());
    r.s.run();

    EXPECT_EQ(accepted, 8);
    EXPECT_EQ(rejected, 3);
    EXPECT_EQ(mq.stats().counterValue("overflow"), 3u);
    EXPECT_EQ(mq.stats().counterValue("rx_full"), 3u);
    EXPECT_EQ(mq.stats().counterValue("pfc_pauses"), 0u);
}

/** Same regression for the batched path: a batch that only partially
 *  fits counts the rejected remainder as overflow. */
TEST(PfcProperties, BatchOverflowCountsRejectedRemainder)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.maxBatch = 4;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);

    std::vector<std::vector<std::uint8_t>> bufs;
    for (int i = 0; i < 13; ++i)
        bufs.push_back(payload(i));
    std::size_t accepted = 0;
    auto push = [&]() -> sim::Task {
        std::vector<SnicMqueue::RxItem> items;
        for (std::size_t i = 0; i < bufs.size(); ++i)
            items.push_back({bufs[i], static_cast<std::uint32_t>(i), 0});
        accepted = co_await mq.rxPushBatch(r.core, items);
    };
    sim::spawn(r.s, push());
    r.s.run();

    EXPECT_EQ(accepted, 8u); // ring capacity
    EXPECT_EQ(mq.stats().counterValue("overflow"), 13u - 8u);
}

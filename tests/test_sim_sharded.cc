/**
 * @file
 * The parallel tier: golden bit-exactness of the sharded engine.
 *
 * The load-bearing claim of DESIGN.md §11 is that a sharded run's
 * results are a pure function of (scenario, seed, shard count) — and
 * not of the worker thread count, the barrier interleaving, or the
 * staging mailbox arrival order. These tests pin that claim:
 *
 *  - a 4-machine echo cluster produces byte-identical fingerprints
 *    (per-generator ledgers + latency quantiles + the merged metrics
 *    JSON) across shards {1,2,4} x threads {1,2,4};
 *  - ten seeds of the same cluster under fault injection (drops,
 *    corruption, delay, a partition window) AND ECN/DCQCN congestion
 *    match between 1 worker and 4 workers at 4 shards;
 *  - unit cases cover the building blocks: the pre-lane, the
 *    conservative lower bound, cross-thread pool frees, key-sorted
 *    record drains, and window skipping.
 *
 * Sharded runs are compared against sharded runs only (shards=1
 * included): the serial engine samples fault/loss randomness
 * sequentially while the sharded fabric uses keyed draws, so the two
 * are each deterministic but not each other's golden.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hh"
#include "sim/fault.hh"
#include "sim/metrics.hh"
#include "sim/pool.hh"
#include "sim/shard.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "sim/time.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

constexpr unsigned kMachines = 4;

struct RunOpts
{
    unsigned shards = 1;
    unsigned threads = 1;
    std::uint64_t seed = 1;
    bool faults = false;
    bool congestion = false;
};

/** Echo server: swap the addresses, send the message back. */
sim::Task
echoLoop(net::Nic &nic, net::Endpoint &ep)
{
    for (;;) {
        net::Message m = co_await ep.recv();
        net::Address from = m.src;
        m.src = m.dst;
        m.dst = from;
        co_await nic.send(std::move(m));
    }
}

/**
 * Run the 4-machine cluster: machine m holds a server NIC (node 2m,
 * echo on port 7000) and a client NIC (node 2m+1) driving an open-loop
 * generator whose logical clients ring-route across the *other*
 * machines — every request and response crosses the fabric, and with
 * shards > 1 most of them cross shards too.
 *
 * @return a fingerprint of everything the run produced that must be a
 * pure function of (seed, scenario): per-generator conservation
 * ledgers, exact latency extrema and quantiles, the final clocks, and
 * the merged metrics snapshot (minus "sim.shard", which is execution
 * telemetry and legitimately varies with shard/thread count).
 */
std::string
runCluster(const RunOpts &o)
{
    sim::ShardedSim ss(o.shards, o.threads);

    net::NetworkConfig ncfg;
    // A wider wire than the LAN default amortizes the window barrier
    // on this tier's small runs; it is part of the scenario, so every
    // compared run uses the same value.
    ncfg.propagation = 5_us;
    if (o.congestion) {
        ncfg.congestion.enabled = true;
        ncfg.congestion.ecnEnabled = true;
        ncfg.congestion.dcqcnEnabled = true;
        // Shape the ports so a 256 B echo workload actually queues
        // and marks (the default band is sized for KB-scale flows).
        ncfg.congestion.portGbps = 0.5;
        ncfg.congestion.ecnKminBytes = 0;
        ncfg.congestion.ecnKmaxBytes = 2048;
        ncfg.congestion.ecnPmax = 0.5;
    }
    net::Network net(ss, ncfg);

    sim::FaultConfig fcfg;
    if (o.faults) {
        fcfg.dropRate = 0.005;
        fcfg.corruptRate = 0.005;
        fcfg.delayRate = 0.01;
        fcfg.delayMin = 5_us;
        fcfg.delayMax = 80_us;
        fcfg.seed = o.seed ^ 0xfau;
    }
    sim::FaultPlan plan(fcfg);
    if (o.faults) {
        // One scheduled partition: machine 0's server vanishes for
        // 4 ms mid-window, so lost/late/expired paths all exercise.
        plan.partition(0, sim::FaultPlan::kAnyNode, 8_ms, 12_ms);
        net.setFaultPlan(&plan);
    }

    std::vector<net::Nic *> servers(kMachines);
    std::vector<net::Nic *> clients(kMachines);
    std::vector<std::unique_ptr<workload::LoadGen>> gens;

    for (unsigned m = 0; m < kMachines; ++m) {
        sim::ShardedSim::Scope scope(ss, m % o.shards);
        servers[m] = &net.addNic("srv" + std::to_string(m));
        clients[m] = &net.addNic("cli" + std::to_string(m));
        net::Endpoint &ep = servers[m]->bind(net::Protocol::Udp, 7000);
        sim::spawn(servers[m]->simulator(), echoLoop(*servers[m], ep));
    }

    for (unsigned m = 0; m < kMachines; ++m) {
        sim::ShardedSim::Scope scope(ss, m % o.shards);
        workload::LoadGenConfig lc;
        lc.nic = clients[m];
        lc.target = {2 * ((m + 1) % kMachines), 7000};
        lc.openRate = 15000.0;
        lc.warmup = 2_ms;
        lc.duration = 12_ms;
        lc.drain = 2_ms;
        lc.openPorts = 4;
        lc.logicalClients = 32;
        lc.requestTimeout = 8_ms;
        lc.makeRequest = [](std::uint64_t, sim::Rng &) {
            return std::vector<std::uint8_t>(256, 0x5a);
        };
        // Ring routing: client c on machine m talks to one of the
        // other three machines, chosen by its id — a pure function of
        // the topology, so it is identical across shard counts.
        lc.routeTarget = [m](std::uint64_t c) {
            return net::Address{
                2 * static_cast<std::uint32_t>((m + 1 + c % 3) %
                                               kMachines),
                7000};
        };
        lc.metricsName = "workload.loadgen.m" + std::to_string(m);
        lc.seed = o.seed * 100 + m;
        gens.push_back(std::make_unique<workload::LoadGen>(
            ss.shard(m % o.shards), lc));
        gens.back()->start();
    }

    sim::Tick deadline = gens[0]->windowEnd() + 8_ms + 1_ms;
    ss.runUntil(deadline);

    if (o.shards > 1) {
        // The scenario is built to cross shards; a zero here means the
        // fabric silently stopped staging and the test went vacuous.
        EXPECT_GT(ss.stats().counterValue("cross_msgs"), 0u)
            << "no cross-shard traffic at " << o.shards << " shards";
    }

    std::ostringstream os;
    for (unsigned m = 0; m < kMachines; ++m) {
        const workload::LoadGen &g = *gens[m];
        EXPECT_TRUE(g.conservationHolds()) << "machine " << m;
        os << "m" << m << " sent=" << g.sent()
           << " completed=" << g.completed()
           << " failed=" << g.windowValidationFailures()
           << " late=" << g.late() << " lost=" << g.lost()
           << " inflight=" << g.openInFlight()
           << " timeouts=" << g.timeouts()
           << " stale=" << g.staleResponses() << "\n";
        const sim::Histogram &h = g.latency();
        os << "m" << m << " lat count=" << h.count()
           << " min=" << h.min() << " max=" << h.max()
           << " sum=" << h.sum() << " p50=" << h.percentile(50)
           << " p99=" << h.percentile(99) << "\n";
    }
    os << "now=" << ss.shard(0).now() << "\n";
    sim::mergedJson(os,
                    sim::mergeRegistries(ss.registries(), "sim.shard"));
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Golden bit-exactness across the shard x thread matrix.

TEST(ShardedGolden, ClusterBitExactAcrossShardsAndThreads)
{
    const std::string golden =
        runCluster({.shards = 1, .threads = 1, .seed = 11});
    ASSERT_NE(golden.find("completed="), std::string::npos);
    for (unsigned shards : {1u, 2u, 4u}) {
        for (unsigned threads : {1u, 2u, 4u}) {
            if (shards == 1 && threads == 1)
                continue;
            EXPECT_EQ(golden, runCluster({.shards = shards,
                                          .threads = threads,
                                          .seed = 11}))
                << "shards=" << shards << " threads=" << threads;
        }
    }
}

TEST(ShardedGolden, ClusterCompletesWork)
{
    // The matrix above would pass vacuously if nothing ever completed;
    // pin that the scenario does real work.
    const std::string fp =
        runCluster({.shards = 2, .threads = 2, .seed = 7});
    EXPECT_EQ(fp.find("completed=0 "), std::string::npos) << fp;
}

// ---------------------------------------------------------------------------
// Chaos: faults + congestion control, ten seeds, 1 vs 4 workers.

TEST(ShardedChaos, TenSeedsFaultsAndCongestionThreadInvariant)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        RunOpts serial{.shards = 4,
                       .threads = 1,
                       .seed = seed,
                       .faults = true,
                       .congestion = true};
        RunOpts parallel = serial;
        parallel.threads = 4;
        EXPECT_EQ(runCluster(serial), runCluster(parallel))
            << "seed " << seed;
    }
}

TEST(ShardedChaos, FaultsActuallyFire)
{
    // Rebuild one chaos run and check the merged fabric counters: the
    // partition window alone guarantees drops, so a zero means the
    // keyed judging path is disconnected and the chaos matrix above
    // proves nothing.
    const std::string fp = runCluster({.shards = 4,
                                       .threads = 4,
                                       .seed = 3,
                                       .faults = true,
                                       .congestion = true});
    EXPECT_NE(fp.find("\"partition_drops\":"), std::string::npos) << fp;
    EXPECT_EQ(fp.find("\"partition_drops\":0"), std::string::npos)
        << "expected nonzero partition drops; merged snapshot:\n"
        << fp;
}

// ---------------------------------------------------------------------------
// Building blocks.

TEST(ShardedEngine, PreLaneFiresBeforeNormalEventsOfTheSameTick)
{
    sim::Simulator s;
    std::vector<int> order;
    s.schedule(100, [&] { order.push_back(1); });
    s.schedulePre(100, [&] { order.push_back(0); });
    s.schedule(100, [&] { order.push_back(2); });
    s.runUntil(200);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngine, NextPendingLowerBoundIsConservative)
{
    sim::Simulator s;
    EXPECT_EQ(s.nextPendingLowerBound(), sim::maxTick);

    s.schedule(37, [] {});
    sim::Tick lb = s.nextPendingLowerBound();
    EXPECT_GE(lb, s.now());
    EXPECT_LE(lb, 37u);
    s.runUntil(37);
    EXPECT_EQ(s.nextPendingLowerBound(), sim::maxTick);

    // A far event parked in a higher wheel level still yields a sound
    // (if coarse) bound.
    sim::Tick when = s.now() + (1u << 14) + 11;
    s.schedule(when, [] {});
    lb = s.nextPendingLowerBound();
    EXPECT_GT(lb, s.now());
    EXPECT_LE(lb, when);
}

TEST(ShardedEngine, PostedRecordsDrainInKeyOrder)
{
    sim::ShardedSim ss(2, 2);
    ss.constrainLookahead(10);
    std::vector<int> order;
    ss.shard(0).schedule(1, [&] {
        // Posted out of key order, from shard 0's event loop; the
        // drain on shard 1 must sort by (a, b, c).
        ss.post(1, 11, 3, 0, 0, [&] { order.push_back(3); });
        ss.post(1, 11, 1, 0, 7, [&] { order.push_back(1); });
        ss.post(1, 11, 1, 0, 2, [&] { order.push_back(0); });
        ss.post(1, 11, 2, 5, 0, [&] { order.push_back(2); });
    });
    ss.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(ss.stats().counterValue("cross_msgs"), 4u);
    EXPECT_EQ(ss.stats().counterValue("staged_records"), 4u);
}

TEST(ShardedEngine, SameShardPostsMergeWithMailboxPosts)
{
    // Records due the same tick on the same shard must drain in key
    // order whether they arrived through the mailbox (cross-shard) or
    // were staged directly (same-shard canonicalized routing).
    sim::ShardedSim ss(2, 1);
    ss.constrainLookahead(10);
    std::vector<int> order;
    ss.shard(0).schedule(1, [&] {
        ss.post(1, 11, 9, 0, 0, [&] { order.push_back(2); });
    });
    ss.shard(1).schedule(1, [&] {
        ss.post(1, 11, 5, 0, 0, [&] { order.push_back(1); });
        ss.post(1, 11, 1, 0, 0, [&] { order.push_back(0); });
    });
    ss.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngine, WindowsSkipIdleStretches)
{
    sim::ShardedSim ss(2, 1);
    ss.constrainLookahead(100);
    int fired = 0;
    ss.shard(0).schedule(5, [&] { ++fired; });
    ss.shard(1).schedule(1'000'000, [&] { ++fired; });
    ss.runUntil(2'000'000);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(ss.shard(0).now(), 2'000'000u);
    EXPECT_EQ(ss.shard(1).now(), 2'000'000u);
    // 2M ticks / 100-tick lookahead would be 20000 windows without
    // skipping; the lower-bound scan collapses the idle stretches.
    EXPECT_LT(ss.stats().counterValue("windows"), 100u);
}

TEST(ShardedEngine, LookaheadTakesTheMinimum)
{
    sim::ShardedSim ss(1, 1);
    EXPECT_EQ(ss.lookahead(), sim::maxTick);
    ss.constrainLookahead(500);
    ss.constrainLookahead(2000);
    EXPECT_EQ(ss.lookahead(), 500u);
    ss.constrainLookahead(200);
    EXPECT_EQ(ss.lookahead(), 200u);
}

#ifndef LYNX_POOL_PASSTHROUGH
TEST(ShardedEngine, CrossThreadPoolFreesParkAndAbsorb)
{
    sim::Pool a, b;
    a.setRemoteAllowed(true);
    b.setRemoteAllowed(true);
    void *p = nullptr;
    {
        sim::PoolScope scope(a);
        p = sim::Pool::instance().allocate(100);
    }
    {
        // Freed while another pool is thread-current: must route to
        // the owner's remote stack, not corrupt b's freelist.
        sim::PoolScope scope(b);
        sim::Pool::instance().deallocate(p);
    }
    EXPECT_EQ(a.stats().remoteFrees, 0u);
    a.absorbRemote();
    EXPECT_EQ(a.stats().remoteFrees, 1u);
    {
        // The absorbed block is back on the owner's freelist.
        sim::PoolScope scope(a);
        void *q = sim::Pool::instance().allocate(100);
        EXPECT_EQ(q, p);
        sim::Pool::instance().deallocate(q);
    }
}
#endif

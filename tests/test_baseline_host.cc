/**
 * @file
 * Tests for the host-centric baseline server: end-to-end echo via
 * CUDA streams, stream-pool limits, and the driver-bottleneck
 * behaviour the paper's §3.2/§6.2 describe.
 */

#include <gtest/gtest.h>

#include "accel/gpu.hh"
#include "baseline/host_server.hh"
#include "lynx/calibration.hh"
#include "net/network.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

struct Rig
{
    sim::Simulator s;
    net::Network nw{s};
    net::Nic &serverNic = nw.addNic("server");
    net::Nic &clientNic = nw.addNic("client");
    sim::CorePool cores{s, "xeon", 6};
    pcie::Fabric fabric{s, "pcie"};
    accel::Gpu gpu{s, "gpu0", fabric};
    accel::GpuDriver driver{s, gpu};

    baseline::HostServerConfig
    config(int streams = 32)
    {
        baseline::HostServerConfig cfg;
        cfg.nic = &serverNic;
        cfg.port = 7000;
        cfg.stack = calibration::vmaXeon();
        cfg.cores = {&cores[0]};
        cfg.streams = streams;
        return cfg;
    }

    /** The classic per-request pipeline: H2D, kernel, D2H, sync. */
    baseline::HostHandler
    echoHandler(sim::Tick kernelTime)
    {
        return [this, kernelTime](sim::Core &core, accel::Stream &st,
                                  const net::Message &req)
                   -> sim::Co<std::vector<std::uint8_t>> {
            co_await st.memcpyH2D(core, req.size());
            co_await st.launch(core, 1, kernelTime);
            co_await st.memcpyD2H(core, req.size());
            co_await st.sync(core);
            co_return std::vector<std::uint8_t>(req.payload.rbegin(),
                                                req.payload.rend());
        };
    }
};

} // namespace

TEST(HostCentric, EndToEndEcho)
{
    Rig r;
    baseline::HostCentricServer server(r.s, r.driver, r.config(),
                                       r.echoHandler(100_us));
    server.start();

    auto &cliEp = r.clientNic.bind(net::Protocol::Udp, 40000);
    net::Message resp;
    auto client = [&]() -> sim::Task {
        net::Message m;
        m.src = {r.clientNic.node(), 40000};
        m.dst = {r.serverNic.node(), 7000};
        m.proto = net::Protocol::Udp;
        m.payload = {1, 2, 3};
        m.sentAt = r.s.now();
        co_await r.clientNic.send(std::move(m));
        resp = co_await cliEp.recv();
    };
    sim::spawn(r.s, client());
    r.s.run();
    EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{3, 2, 1}));
    EXPECT_EQ(server.stats().counterValue("responses"), 1u);
}

TEST(HostCentric, LatencyIncludesManagementOverhead)
{
    // §3.2: 100 us kernel => ~130 us pipeline (30 us GPU management).
    Rig r;
    baseline::HostCentricServer server(r.s, r.driver, r.config(),
                                       r.echoHandler(100_us));
    server.start();

    workload::LoadGenConfig lg;
    lg.nic = &r.clientNic;
    lg.target = {r.serverNic.node(), 7000};
    lg.concurrency = 1;
    lg.warmup = 2_ms;
    lg.duration = 40_ms;
    lg.makeRequest = [](std::uint64_t, sim::Rng &) {
        return std::vector<std::uint8_t>(4, 1);
    };
    workload::LoadGen gen(r.s, lg);
    gen.start();
    r.s.runUntil(gen.windowEnd() + 2_ms);

    double p50us = sim::toMicroseconds(gen.latency().percentile(50));
    EXPECT_GT(p50us, 128.0); // kernel + mgmt + net
    EXPECT_LT(p50us, 145.0);
}

TEST(HostCentric, StreamPoolBoundsConcurrency)
{
    Rig r;
    // 2 streams, long kernels: throughput caps at 2 in flight.
    baseline::HostCentricServer server(r.s, r.driver, r.config(2),
                                       r.echoHandler(1_ms));
    server.start();

    workload::LoadGenConfig lg;
    lg.nic = &r.clientNic;
    lg.target = {r.serverNic.node(), 7000};
    lg.concurrency = 8;
    lg.warmup = 5_ms;
    lg.duration = 100_ms;
    lg.requestTimeout = 500_ms;
    workload::LoadGen gen(r.s, lg);
    gen.start();
    r.s.runUntil(gen.windowEnd() + 20_ms);

    // 2 concurrent 1 ms kernels => ~2000 req/s.
    EXPECT_NEAR(gen.throughputRps(), 2000.0, 300.0);
}

TEST(HostCentric, DriverSerializesManyStreams)
{
    // With many short kernels the driver lock, not the GPU, is the
    // bottleneck ("more threads result in a slowdown due to an
    // NVIDIA driver bottleneck", §6.2).
    Rig r;
    baseline::HostCentricServer server(r.s, r.driver, r.config(64),
                                       r.echoHandler(20_us));
    server.start();

    workload::LoadGenConfig lg;
    lg.nic = &r.clientNic;
    lg.target = {r.serverNic.node(), 7000};
    lg.concurrency = 64;
    lg.warmup = 5_ms;
    lg.duration = 100_ms;
    lg.requestTimeout = 500_ms;
    workload::LoadGen gen(r.s, lg);
    gen.start();
    r.s.runUntil(gen.windowEnd() + 20_ms);

    // GPU could do 64 / 20 us = 3.2 M/s; the driver allows ~25-35 K.
    EXPECT_LT(gen.throughputRps(), 60'000.0);
    EXPECT_GT(gen.throughputRps(), 15'000.0);
    EXPECT_GT(r.driver.stats().counterValue("contended_calls"), 100u);
}

/**
 * @file
 * Flow steering tests: the Toeplitz RSS hash against Microsoft's
 * published known-answer vectors, the indirection-table steering
 * policy, consistent-hash ring properties, and the dispatcher's
 * DispatchPolicy::Rss + admission-control integration.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "lynx/calibration.hh"
#include "lynx/dispatcher.hh"
#include "lynx/gio.hh"
#include "lynx/runtime.hh"
#include "lynx/snic_mqueue.hh"
#include "net/network.hh"
#include "net/steering.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using namespace lynx::net::steer;

namespace {

/** One row of Microsoft's "Verifying the RSS Hash Calculation"
 *  IPv4 suite (src/dst as dotted-quad words, ports host-order). */
struct RssVector
{
    std::uint32_t dstAddr;
    std::uint16_t dstPort;
    std::uint32_t srcAddr;
    std::uint16_t srcPort;
    std::uint32_t hash2; // addresses only
    std::uint32_t hash4; // with ports
};

constexpr std::uint32_t
ip(int a, int b, int c, int d)
{
    return (static_cast<std::uint32_t>(a) << 24) |
           (static_cast<std::uint32_t>(b) << 16) |
           (static_cast<std::uint32_t>(c) << 8) |
           static_cast<std::uint32_t>(d);
}

const RssVector kVectors[] = {
    {ip(161, 142, 100, 80), 1766, ip(66, 9, 149, 187), 2794,
     0x323e8fc2, 0x51ccc178},
    {ip(65, 69, 140, 83), 4739, ip(199, 92, 111, 2), 14230,
     0xd718262a, 0xc626b0ea},
    {ip(12, 22, 207, 184), 38024, ip(24, 19, 198, 95), 12898,
     0xd2d0a5de, 0x5c2b394a},
    {ip(209, 142, 163, 6), 2217, ip(38, 27, 205, 30), 48228,
     0x82989176, 0xafc7327f},
    {ip(202, 188, 127, 2), 1303, ip(153, 39, 163, 191), 44251,
     0x5d1809c5, 0x10e828a2},
};

} // namespace

TEST(Toeplitz, MatchesMicrosoftKnownAnswerVectors4Tuple)
{
    for (const RssVector &v : kVectors) {
        EXPECT_EQ(rssHash(v.srcAddr, v.srcPort, v.dstAddr, v.dstPort),
                  v.hash4)
            << "src " << std::hex << v.srcAddr;
    }
}

TEST(Toeplitz, MatchesMicrosoftKnownAnswerVectors2Tuple)
{
    for (const RssVector &v : kVectors) {
        EXPECT_EQ(rssHash2(v.srcAddr, v.dstAddr), v.hash2)
            << "src " << std::hex << v.srcAddr;
    }
}

TEST(Toeplitz, HashDependsOnEveryTupleField)
{
    std::uint32_t base = rssHash(10, 1000, 20, 7000);
    EXPECT_NE(rssHash(11, 1000, 20, 7000), base);
    EXPECT_NE(rssHash(10, 1001, 20, 7000), base);
    EXPECT_NE(rssHash(10, 1000, 21, 7000), base);
    EXPECT_NE(rssHash(10, 1000, 20, 7001), base);
}

TEST(RssSteering, DeterministicAndInRange)
{
    RssSteering st;
    for (std::uint16_t port = 1; port < 200; ++port) {
        net::Address src{3, port};
        net::Address dst{1, 7000};
        std::size_t q = st.pick(src, dst, 4);
        EXPECT_LT(q, 4u);
        EXPECT_EQ(st.pick(src, dst, 4), q); // stable per flow
    }
}

TEST(RssSteering, SpreadsFlowsAcrossQueues)
{
    RssSteering st;
    std::vector<int> hits(8, 0);
    for (std::uint16_t port = 40000; port < 40512; ++port)
        ++hits[st.pick({3, port}, {1, 7000}, 8)];
    for (int h : hits) {
        // 512 flows over 8 queues: each queue should see a healthy
        // share (binomial tails put this far from zero).
        EXPECT_GT(h, 20);
        EXPECT_LT(h, 512 - 20 * 7);
    }
}

TEST(ConsistentHashRing, BalancesKeysAcrossMembers)
{
    ConsistentHashRing ring;
    for (std::uint64_t m = 1; m <= 4; ++m)
        ring.add(m);
    std::map<std::uint64_t, int> perMember;
    const int keys = 40000;
    for (int k = 0; k < keys; ++k)
        ++perMember[ring.route(static_cast<std::uint64_t>(k))];
    ASSERT_EQ(perMember.size(), 4u);
    for (const auto &[m, n] : perMember) {
        // Within a 2x band of the fair share — virtual nodes keep the
        // arcs from degenerating.
        EXPECT_GT(n, keys / 8) << "member " << m;
        EXPECT_LT(n, keys / 2) << "member " << m;
    }
}

TEST(ConsistentHashRing, RemovalMovesOnlyTheDepartedArc)
{
    ConsistentHashRing ring;
    for (std::uint64_t m = 1; m <= 4; ++m)
        ring.add(m);
    const int keys = 20000;
    std::vector<std::uint64_t> before;
    for (int k = 0; k < keys; ++k)
        before.push_back(ring.route(static_cast<std::uint64_t>(k)));
    ring.remove(3);
    EXPECT_EQ(ring.size(), 3u);
    for (int k = 0; k < keys; ++k) {
        std::uint64_t now = ring.route(static_cast<std::uint64_t>(k));
        EXPECT_NE(now, 3u);
        if (before[static_cast<std::size_t>(k)] != 3) {
            EXPECT_EQ(now, before[static_cast<std::size_t>(k)])
                << "key " << k << " moved although its member stayed";
        }
    }
}

TEST(ConsistentHashRing, RouteIsIndependentOfInsertionOrder)
{
    ConsistentHashRing a, b;
    for (std::uint64_t m : {1ull, 2ull, 3ull})
        a.add(m);
    for (std::uint64_t m : {3ull, 1ull, 2ull})
        b.add(m);
    for (int k = 0; k < 5000; ++k)
        EXPECT_EQ(a.route(static_cast<std::uint64_t>(k)),
                  b.route(static_cast<std::uint64_t>(k)));
}

namespace {

/** A complete single-machine Lynx deployment with one accelerator. */
struct Deployment
{
    sim::Simulator s;
    net::Network nw{s};
    net::Nic &snicNic = nw.addNic("snic");
    net::Nic &clientNic = nw.addNic("client");
    sim::CorePool snicCores{s, "snic.arm", 7};
    pcie::DeviceMemory accelMem{"gpu0.mem", 4 << 20};
    std::unique_ptr<core::Runtime> rt;

    explicit Deployment(core::RuntimeConfig cfg = {})
    {
        for (std::size_t i = 0; i < snicCores.size(); ++i)
            cfg.cores.push_back(&snicCores[i]);
        cfg.nic = &snicNic;
        cfg.stack = calibration::vmaXeon();
        cfg.listenersPerService = 2;
        rt = std::make_unique<core::Runtime>(s, cfg);
    }
};

/** Echo worker that records which queue served which request (the
 *  flow and index ride in the first two payload bytes — gio strips
 *  the transport metadata). */
sim::Task
recordingWorker(core::AccelQueue &q, std::size_t qi,
                std::map<std::uint64_t, std::size_t> &servedBy)
{
    for (;;) {
        core::GioMessage m = co_await q.recv();
        std::uint64_t key =
            static_cast<std::uint64_t>(m.payload.at(0)) * 1000 +
            m.payload.at(1);
        servedBy[key] = qi;
        co_await q.send(m.tag, m.payload);
    }
}

} // namespace

TEST(RssDispatch, FlowsKeepTheirHardwarePredictedQueue)
{
    Deployment d;
    auto &accel = d.rt->addAccelerator("gpu0", d.accelMem,
                                       rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    scfg.policy = core::DispatchPolicy::Rss;
    auto &svc = d.rt->addService(scfg);
    auto queues = d.rt->makeAccelQueues(svc, accel);
    std::map<std::uint64_t, std::size_t> servedBy;
    for (std::size_t i = 0; i < queues.size(); ++i)
        sim::spawn(d.s, recordingWorker(*queues[i], i, servedBy));
    d.rt->start();

    const int flows = 8;
    const int perFlow = 5;
    std::vector<net::Endpoint *> eps;
    for (int f = 0; f < flows; ++f)
        eps.push_back(&d.clientNic.bind(
            net::Protocol::Udp,
            static_cast<std::uint16_t>(40000 + f)));
    auto client = [&](int f) -> sim::Task {
        for (int i = 0; i < perFlow; ++i) {
            net::Message m;
            m.src = {d.clientNic.node(),
                     static_cast<std::uint16_t>(40000 + f)};
            m.dst = {d.snicNic.node(), 7000};
            m.proto = net::Protocol::Udp;
            std::vector<std::uint8_t> payload(32, 0x5a);
            payload[0] = static_cast<std::uint8_t>(f);
            payload[1] = static_cast<std::uint8_t>(i);
            m.payload = std::move(payload);
            m.seq = static_cast<std::uint64_t>(f) * 1000 + i;
            m.sentAt = d.s.now();
            co_await d.clientNic.send(std::move(m));
            co_await eps[static_cast<std::size_t>(f)]->recv();
        }
    };
    for (int f = 0; f < flows; ++f)
        sim::spawn(d.s, client(f));
    d.s.run();

    ASSERT_EQ(servedBy.size(),
              static_cast<std::size_t>(flows * perFlow));
    RssSteering reference;
    std::set<std::size_t> used;
    for (int f = 0; f < flows; ++f) {
        std::size_t expect = reference.pick(
            {d.clientNic.node(),
             static_cast<std::uint16_t>(40000 + f)},
            {d.snicNic.node(), 7000}, 4);
        for (int i = 0; i < perFlow; ++i) {
            std::uint64_t seq =
                static_cast<std::uint64_t>(f) * 1000 + i;
            ASSERT_TRUE(servedBy.count(seq));
            // Every message of a flow lands on the queue the real
            // Toeplitz+indirection hardware would pick.
            EXPECT_EQ(servedBy[seq], expect) << "flow " << f;
        }
        used.insert(expect);
    }
    // And the hash actually spreads these flows.
    EXPECT_GE(used.size(), 2u);
    EXPECT_EQ(svc.dispatcher().steerStats().counterValue("rss_picks"),
              static_cast<std::uint64_t>(flows * perFlow));
    EXPECT_EQ(
        svc.dispatcher().steerStats().counterValue("rss_fallbacks"),
        0u);
}

TEST(RssDispatch, DeadHomeQueueFallsBackAndIsCounted)
{
    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};

    core::DispatcherConfig dcfg;
    core::Dispatcher disp("rss.dispatch", core::DispatchPolicy::Rss,
                          dcfg);
    std::vector<std::unique_ptr<core::SnicMqueue>> mqs;
    for (int q = 0; q < 4; ++q) {
        core::MqueueLayout layout{
            static_cast<std::uint64_t>(q) * 8192, 8, 256};
        mqs.push_back(std::make_unique<core::SnicMqueue>(
            s, "mq" + std::to_string(q), qp, layout,
            core::MqueueKind::Server, core::SnicMqueueConfig{}));
        disp.addQueue(mqs.back().get());
    }

    net::Message m;
    m.src = {3, 41234};
    m.dst = {1, 7000};
    m.proto = net::Protocol::Udp;
    m.payload = std::vector<std::uint8_t>(16, 1);

    RssSteering reference;
    std::size_t home = reference.pick(m.src, m.dst, 4);
    disp.setQueueDead(home, true);

    auto driver = [&]() -> sim::Task {
        net::Message copy = m;
        co_await disp.dispatch(core, std::move(copy));
    };
    sim::spawn(s, driver());
    s.run();

    // The home queue is excluded; its linear-probe neighbour takes
    // the flow, and the detour is visible in the fallback counter.
    EXPECT_EQ(mqs[home]->tagsInFlight(), 0u);
    EXPECT_EQ(mqs[(home + 1) % 4]->tagsInFlight(), 1u);
    EXPECT_EQ(disp.steerStats().counterValue("rss_picks"), 1u);
    EXPECT_EQ(disp.steerStats().counterValue("rss_fallbacks"), 1u);
}

TEST(Admission, ShedsAtConfiguredOccupancyAndCountsEveryReject)
{
    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};

    core::DispatcherConfig dcfg;
    dcfg.admission.enabled = true;
    dcfg.admission.shedOccupancy = 0.25;
    core::Dispatcher disp("adm.dispatch",
                          core::DispatchPolicy::RoundRobin, dcfg);
    std::vector<std::unique_ptr<core::SnicMqueue>> mqs;
    for (int q = 0; q < 2; ++q) {
        // 4 ring slots -> 8 tag-table entries per queue: capacity 16.
        core::MqueueLayout layout{
            static_cast<std::uint64_t>(q) * 8192, 4, 256};
        mqs.push_back(std::make_unique<core::SnicMqueue>(
            s, "mq" + std::to_string(q), qp, layout,
            core::MqueueKind::Server, core::SnicMqueueConfig{}));
        disp.addQueue(mqs.back().get());
    }

    const int arrivals = 10;
    auto driver = [&]() -> sim::Task {
        for (int i = 0; i < arrivals; ++i) {
            net::Message m;
            m.src = {3, static_cast<std::uint16_t>(40000 + i)};
            m.dst = {1, 7000};
            m.proto = net::Protocol::Udp;
            m.payload = std::vector<std::uint8_t>(16, 1);
            m.seq = static_cast<std::uint64_t>(i);
            co_await disp.dispatch(core, std::move(m));
        }
    };
    sim::spawn(s, driver());
    s.run();

    // Nothing consumes the rings, so in-flight tags only grow:
    // 16 tag entries * 0.25 = 4 admits, then every arrival sheds.
    std::uint64_t admitted =
        disp.admissionStats().counterValue("admitted");
    std::uint64_t shed =
        disp.admissionStats().counterValue("shed_ring_full");
    EXPECT_EQ(admitted, 4u);
    EXPECT_EQ(shed, static_cast<std::uint64_t>(arrivals) - admitted);
    EXPECT_EQ(mqs[0]->tagsInFlight() + mqs[1]->tagsInFlight(), 4u);
}

TEST(Admission, DisabledLeavesTheSeedPathUntouched)
{
    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};

    core::Dispatcher disp("off.dispatch",
                          core::DispatchPolicy::RoundRobin,
                          core::DispatcherConfig{});
    core::MqueueLayout layout{0, 4, 256};
    core::SnicMqueue mq(s, "mq0", qp, layout, core::MqueueKind::Server,
                        core::SnicMqueueConfig{});
    disp.addQueue(&mq);

    auto driver = [&]() -> sim::Task {
        for (int i = 0; i < 6; ++i) {
            net::Message m;
            m.src = {3, 40000};
            m.dst = {1, 7000};
            m.proto = net::Protocol::Udp;
            m.payload = std::vector<std::uint8_t>(16, 1);
            co_await disp.dispatch(core, std::move(m));
        }
    };
    sim::spawn(s, driver());
    s.run();

    EXPECT_EQ(disp.admissionStats().counterValue("admitted"), 0u);
    EXPECT_EQ(disp.admissionStats().counterValue("shed_ring_full"),
              0u);
    EXPECT_EQ(mq.tagsInFlight(), 4u); // ring-capacity pushes landed
}

/**
 * @file
 * Tests for LBP face verification: code properties, histogram mass,
 * metric behaviour, and same/different-person separation on the
 * synthetic FERET-like dataset.
 */

#include <gtest/gtest.h>

#include "apps/lbp.hh"
#include "workload/datagen.hh"

using namespace lynx::apps;
using lynx::workload::synthFace;

TEST(Lbp, HistogramMassEqualsPixelCount)
{
    auto img = synthFace(1, 0);
    auto hist = lbpHistogram(img, 32, 32, 4);
    EXPECT_EQ(hist.size(), 4u * 4u * 256u);
    std::uint64_t total = 0;
    for (auto h : hist)
        total += h;
    EXPECT_EQ(total, 32u * 32u);
}

TEST(Lbp, UniformImageGivesAllOnesCode)
{
    std::vector<std::uint8_t> flat(16 * 16, 100);
    auto codes = lbpCodes(flat, 16, 16);
    for (auto c : codes)
        EXPECT_EQ(c, 0xff); // every neighbour >= center
}

TEST(Lbp, DistanceToSelfIsZero)
{
    auto img = synthFace(3, 1);
    EXPECT_DOUBLE_EQ(lbpDistance(img, img, 32, 32), 0.0);
}

TEST(Lbp, ChiSquareIsSymmetric)
{
    auto a = lbpHistogram(synthFace(1, 0), 32, 32);
    auto b = lbpHistogram(synthFace(2, 0), 32, 32);
    EXPECT_DOUBLE_EQ(lbpChiSquare(a, b), lbpChiSquare(b, a));
}

TEST(Lbp, SamePersonCloserThanDifferentPerson)
{
    // The core property the Face Verification server depends on.
    int correct = 0, total = 0;
    for (std::uint32_t person = 0; person < 8; ++person) {
        double same = lbpDistance(synthFace(person, 0),
                                  synthFace(person, 1), 32, 32);
        for (std::uint32_t other = 0; other < 8; ++other) {
            if (other == person)
                continue;
            double diff = lbpDistance(synthFace(person, 0),
                                      synthFace(other, 0), 32, 32);
            correct += (same < diff);
            ++total;
        }
    }
    // Synthetic faces are crude; demand a strong majority.
    EXPECT_GT(correct, total * 3 / 4);
}

TEST(Lbp, VerifyThresholdSeparates)
{
    auto probe = synthFace(5, 3);
    auto enrolled = synthFace(5, 0);
    auto impostor = synthFace(6, 0);
    double genuine = lbpDistance(probe, enrolled, 32, 32);
    double fraud = lbpDistance(probe, impostor, 32, 32);
    EXPECT_LT(genuine, fraud);
    double threshold = (genuine + fraud) / 2;
    EXPECT_TRUE(lbpVerify(probe, enrolled, 32, 32, threshold));
    EXPECT_FALSE(lbpVerify(probe, impostor, 32, 32, threshold));
}

TEST(LbpDeath, SizeMismatchPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<std::uint8_t> img(10);
    EXPECT_DEATH(lbpCodes(img, 32, 32), "mismatch");
}

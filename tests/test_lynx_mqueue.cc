/**
 * @file
 * Tests for the mqueue layout/codec and the SnicMqueue/AccelQueue
 * pair transporting real bytes over an RDMA QP.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "lynx/gio.hh"
#include "lynx/mqueue.hh"
#include "lynx/snic_mqueue.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using lynx::core::AccelQueue;
using lynx::core::ClientRef;
using lynx::core::MqueueKind;
using lynx::core::MqueueLayout;
using lynx::core::SlotMeta;
using lynx::core::SnicMqueue;

namespace {

std::vector<std::uint8_t>
bytes(std::initializer_list<int> xs)
{
    std::vector<std::uint8_t> v;
    for (int x : xs)
        v.push_back(static_cast<std::uint8_t>(x));
    return v;
}

struct Rig
{
    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};
    MqueueLayout layout{0, 8, 256};
};

} // namespace

TEST(MqueueLayout, GeometryIsConsistent)
{
    MqueueLayout l{1024, 16, 2048};
    EXPECT_EQ(l.maxPayload(), 2048u - 16u);
    EXPECT_EQ(l.rxSlot(0), 1024u);
    EXPECT_EQ(l.rxSlot(16), 1024u); // wraps
    EXPECT_EQ(l.rxSlot(17), 1024u + 2048u);
    EXPECT_EQ(l.txSlot(0), 1024u + 16u * 2048u);
    EXPECT_EQ(l.rxDoorbell(0), l.rxSlotEnd(0) - 4);
    EXPECT_EQ(l.rxConsOff(), 1024u + 2u * 16u * 2048u);
    EXPECT_EQ(l.txConsOff(), l.rxConsOff() + 4);
    EXPECT_EQ(l.totalBytes(), 2u * 16u * 2048u + 8u);
    EXPECT_EQ(l.ringBytes(), 16u * 2048u);
    EXPECT_EQ(l.txRingOff(), 1024u + 16u * 2048u);
}

TEST(MqueueCodec, RoundTripThroughMemory)
{
    pcie::DeviceMemory mem("m", 4096);
    MqueueLayout l{0, 4, 512};
    auto payload = bytes({1, 2, 3, 4, 5, 6, 7});
    SlotMeta meta{7, 42, 0, 1};
    auto buf = core::encodeSlotWrite(payload, meta);
    EXPECT_EQ(buf.size(), 7u + SlotMeta::bytes);

    std::uint64_t slotEnd = l.rxSlotEnd(0);
    mem.write(core::slotWriteOffset(slotEnd, 7), buf);

    SlotMeta got = core::readSlotMeta(mem, slotEnd);
    EXPECT_EQ(got.len, 7u);
    EXPECT_EQ(got.tag, 42u);
    EXPECT_EQ(got.err, 0u);
    EXPECT_EQ(got.seq, 1u);
    EXPECT_EQ(core::readSlotPayload(mem, slotEnd, got), payload);
}

TEST(MqueueCodec, DoorbellBytesAreLastInTheWrite)
{
    auto payload = bytes({9, 9});
    SlotMeta meta{2, 0, 0, 0x0a0b0c0d};
    auto buf = core::encodeSlotWrite(payload, meta);
    // Last four bytes of the contiguous write are the doorbell.
    ASSERT_EQ(buf.size(), 18u);
    EXPECT_EQ(buf[14], 0x0d);
    EXPECT_EQ(buf[17], 0x0a);
}

TEST(MqueueCodec, ParseFromSnapshotBuffer)
{
    auto payload = bytes({5, 4, 3});
    SlotMeta meta{3, 7, 1, 9};
    auto written = core::encodeSlotWrite(payload, meta);
    std::vector<std::uint8_t> slot(128, 0);
    std::copy(written.begin(), written.end(),
              slot.end() - static_cast<long>(written.size()));
    SlotMeta got = core::parseSlotMeta(slot);
    EXPECT_EQ(got.len, 3u);
    EXPECT_EQ(got.tag, 7u);
    EXPECT_EQ(got.err, 1u);
    EXPECT_EQ(got.seq, 9u);
    EXPECT_EQ(core::parseSlotPayload(slot, got), payload);
}

TEST(SnicAccelQueue, RxPushReachesAccelRecv)
{
    Rig r;
    SnicMqueue snicQ(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    AccelQueue accelQ(r.s, "gio0", r.mem, r.layout);

    core::GioMessage got;
    auto accelTask = [&]() -> sim::Task { got = co_await accelQ.recv(); };
    auto snicTask = [&]() -> sim::Task {
        auto p = bytes({10, 20, 30});
        bool ok = co_await snicQ.rxPush(r.core, p, 5);
        EXPECT_TRUE(ok);
    };
    sim::spawn(r.s, accelTask());
    sim::spawn(r.s, snicTask());
    r.s.run();
    EXPECT_EQ(got.payload, bytes({10, 20, 30}));
    EXPECT_EQ(got.tag, 5u);
    EXPECT_EQ(got.err, 0u);
}

TEST(SnicAccelQueue, AccelSendReachesForwarderPoll)
{
    Rig r;
    SnicMqueue snicQ(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    AccelQueue accelQ(r.s, "gio0", r.mem, r.layout);

    bool woke = false;
    snicQ.setTxActivityHandler([&] { woke = true; });

    std::optional<core::TxMessage> got;
    auto accelTask = [&]() -> sim::Task {
        auto p = bytes({1, 1, 2, 3, 5});
        co_await accelQ.send(9, p);
    };
    sim::spawn(r.s, accelTask());
    r.s.run();
    EXPECT_TRUE(woke);

    auto snicTask = [&]() -> sim::Task {
        got = co_await snicQ.pollTx(r.core);
    };
    sim::spawn(r.s, snicTask());
    r.s.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, bytes({1, 1, 2, 3, 5}));
    EXPECT_EQ(got->tag, 9u);
}

TEST(SnicAccelQueue, PollOnEmptyTxReturnsNothing)
{
    Rig r;
    SnicMqueue snicQ(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    std::optional<core::TxMessage> got;
    bool polled = false;
    auto snicTask = [&]() -> sim::Task {
        got = co_await snicQ.pollTx(r.core);
        polled = true;
    };
    sim::spawn(r.s, snicTask());
    r.s.run();
    EXPECT_TRUE(polled);
    EXPECT_FALSE(got.has_value());
}

TEST(SnicAccelQueue, ManyMessagesWrapTheRingInOrder)
{
    Rig r;
    SnicMqueue snicQ(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    AccelQueue accelQ(r.s, "gio0", r.mem, r.layout);

    const int total = 50; // ring has 8 slots: multiple laps
    std::vector<std::uint32_t> seen;
    auto accelTask = [&]() -> sim::Task {
        for (int i = 0; i < total; ++i) {
            auto m = co_await accelQ.recv();
            EXPECT_EQ(m.payload.size(), 4u);
            seen.push_back(m.payload[0] |
                           (static_cast<std::uint32_t>(m.payload[1]) << 8));
        }
    };
    auto snicTask = [&]() -> sim::Task {
        for (int i = 0; i < total; ++i) {
            std::vector<std::uint8_t> p{
                static_cast<std::uint8_t>(i),
                static_cast<std::uint8_t>(i >> 8), 0, 0};
            // Push may momentarily see a full ring; retry as the
            // dispatcher would for a client queue.
            for (;;) {
                bool ok = co_await snicQ.rxPush(r.core, p, 0);
                if (ok)
                    break;
                co_await sim::sleep(1_us);
            }
        }
    };
    sim::spawn(r.s, accelTask());
    sim::spawn(r.s, snicTask());
    r.s.run();
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i)
        EXPECT_EQ(seen[i], static_cast<std::uint32_t>(i));
}

TEST(SnicAccelQueue, RxFullDropsWhenAccelStalled)
{
    Rig r;
    SnicMqueue snicQ(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    // No accelerator consuming: ring (8 slots) must fill and report.
    int accepted = 0, rejected = 0;
    auto snicTask = [&]() -> sim::Task {
        for (int i = 0; i < 12; ++i) {
            std::vector<std::uint8_t> one(1, 1);
            bool ok = co_await snicQ.rxPush(r.core, one, 0);
            (ok ? accepted : rejected)++;
        }
    };
    sim::spawn(r.s, snicTask());
    r.s.run();
    EXPECT_EQ(accepted, 8);
    EXPECT_EQ(rejected, 4);
    EXPECT_EQ(snicQ.stats().counterValue("rx_full"), 4u);
}

TEST(SnicAccelQueue, TxBackpressureBlocksAccelUntilCommit)
{
    Rig r;
    SnicMqueue snicQ(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    AccelQueue accelQ(r.s, "gio0", r.mem, r.layout);

    int sent = 0;
    auto accelTask = [&]() -> sim::Task {
        for (int i = 0; i < 10; ++i) { // ring holds 8
            std::vector<std::uint8_t> seven(1, 7);
            co_await accelQ.send(0, seven);
            ++sent;
        }
    };
    sim::spawn(r.s, accelTask());
    r.s.run();
    EXPECT_EQ(sent, 8);
    EXPECT_GE(accelQ.stats().counterValue("tx_stalls"), 1u);

    // SNIC drains two and returns credit; the accel finishes.
    auto snicTask = [&]() -> sim::Task {
        (void)co_await snicQ.pollTx(r.core);
        (void)co_await snicQ.pollTx(r.core);
        co_await snicQ.commitTxCons(r.core);
    };
    sim::spawn(r.s, snicTask());
    r.s.run();
    EXPECT_EQ(sent, 10);
}

TEST(SnicAccelQueue, WriteBarrierModeDeliversCorrectlyAndSlower)
{
    Rig r;
    core::SnicMqueueConfig fast;
    core::SnicMqueueConfig barrier;
    barrier.writeBarrier = true;

    MqueueLayout l2{r.layout.totalBytes() + 64, 8, 256};
    SnicMqueue fastQ(r.s, "fast", r.qp, r.layout, MqueueKind::Server, fast);
    SnicMqueue slowQ(r.s, "slow", r.qp, l2, MqueueKind::Server, barrier);
    AccelQueue fastA(r.s, "gioF", r.mem, r.layout);
    AccelQueue slowA(r.s, "gioS", r.mem, l2);

    sim::Tick fastAt = 0, slowAt = 0;
    auto recvFast = [&]() -> sim::Task {
        (void)co_await fastA.recv();
        fastAt = r.s.now();
    };
    auto recvSlow = [&]() -> sim::Task {
        (void)co_await slowA.recv();
        slowAt = r.s.now();
    };
    std::vector<std::uint8_t> twoBytes{1, 2};
    auto push = [&]() -> sim::Task {
        co_await fastQ.rxPush(r.core, twoBytes, 0);
    };
    auto push2 = [&]() -> sim::Task {
        co_await slowQ.rxPush(r.core, twoBytes, 0);
    };
    sim::spawn(r.s, recvFast());
    sim::spawn(r.s, recvSlow());
    sim::spawn(r.s, push());
    sim::spawn(r.s, push2());
    r.s.run();
    EXPECT_GT(fastAt, 0u);
    EXPECT_GT(slowAt, 0u);
    // The 3-op barrier sequence costs several microseconds extra
    // (§5.1 quotes ~5 us on their hardware).
    EXPECT_GT(slowAt, fastAt + 2_us);
}

TEST(SnicMqueue, TagTableRoundTrip)
{
    Rig r;
    SnicMqueue q(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    ClientRef c;
    c.addr = net::Address{3, 555};
    c.proto = net::Protocol::Udp;
    c.seq = 77;
    c.sentAt = 123;
    auto tag = q.allocTag(c);
    ASSERT_TRUE(tag.has_value());
    ClientRef got = q.releaseTag(*tag);
    EXPECT_EQ(got.addr, c.addr);
    EXPECT_EQ(got.seq, 77u);
    EXPECT_EQ(got.sentAt, 123u);
}

TEST(SnicMqueue, TagTableExhaustionReturnsNothing)
{
    Rig r;
    SnicMqueue q(r.s, "mq0", r.qp, r.layout, MqueueKind::Server);
    ClientRef c;
    std::vector<std::uint32_t> tags;
    for (std::uint32_t i = 0; i < r.layout.slots * 2; ++i) {
        auto t = q.allocTag(c);
        ASSERT_TRUE(t.has_value());
        tags.push_back(*t);
    }
    EXPECT_FALSE(q.allocTag(c).has_value());
    q.releaseTag(tags.front());
    EXPECT_TRUE(q.allocTag(c).has_value());
}

TEST(SnicMqueue, PendingFifoOrdersWithDeadlines)
{
    Rig r;
    SnicMqueue q(r.s, "cq0", r.qp, r.layout, MqueueKind::Client);
    EXPECT_FALSE(q.hasPending());
    q.notePending(3, 100_us);
    q.notePending(1, 200_us);
    q.notePending(2, 300_us);
    EXPECT_TRUE(q.hasPending());
    ASSERT_NE(q.oldestPending(), nullptr);
    EXPECT_EQ(q.oldestPending()->tag, 3u);
    EXPECT_EQ(q.oldestPending()->deadline, 100_us);
    EXPECT_EQ(q.popPending()->tag, 3u);
    EXPECT_EQ(q.popPending()->tag, 1u);
    EXPECT_EQ(q.popPending()->tag, 2u);
    EXPECT_FALSE(q.popPending().has_value());
    EXPECT_EQ(q.oldestPending(), nullptr);
}

TEST(SnicMqueue, PendingActivityGateOpensOnNote)
{
    Rig r;
    SnicMqueue q(r.s, "cq0", r.qp, r.layout, MqueueKind::Client);
    q.pendingActivity().close();
    EXPECT_FALSE(q.pendingActivity().isOpen());
    q.notePending(1, 1_ms);
    EXPECT_TRUE(q.pendingActivity().isOpen());
}

/**
 * @file
 * Unit tests for coroutine tasks: spawning, sleeping, joining, and
 * teardown of never-finishing tasks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx::sim;
using namespace lynx::sim::literals;

namespace {

Task
sleeper(Simulator &sim, Tick d, Tick *woke)
{
    co_await sleep(d);
    *woke = sim.now();
}

Task
counter(int *n, int upto, Tick period)
{
    for (int i = 0; i < upto; ++i) {
        co_await sleep(period);
        ++*n;
    }
}

} // namespace

TEST(Task, RunsSynchronouslyUntilFirstSuspend)
{
    Simulator sim;
    bool entered = false;
    auto body = [&]() -> Task {
        entered = true;
        co_await sleep(1_us);
    };
    spawn(sim, body());
    EXPECT_TRUE(entered); // before sim.run()
    sim.run();
}

TEST(Task, SleepAdvancesSimTime)
{
    Simulator sim;
    Tick woke = 0;
    spawn(sim, sleeper(sim, 42_us, &woke));
    sim.run();
    EXPECT_EQ(woke, 42_us);
}

TEST(Task, SequentialSleepsAccumulate)
{
    Simulator sim;
    int n = 0;
    spawn(sim, counter(&n, 10, 5_us));
    sim.run();
    EXPECT_EQ(n, 10);
    EXPECT_EQ(sim.now(), 50_us);
}

TEST(Task, ManyTasksInterleaveDeterministically)
{
    Simulator sim;
    std::vector<int> order;
    auto body = [&](int id, Tick start, Tick period) -> Task {
        co_await sleep(start);
        for (int i = 0; i < 3; ++i) {
            order.push_back(id);
            co_await sleep(period);
        }
    };
    spawn(sim, body(0, 0_us, 10_us));
    spawn(sim, body(1, 5_us, 10_us));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Task, JoinWaitsForCompletion)
{
    Simulator sim;
    Tick joinedAt = 0;
    auto worker = [&]() -> Task { co_await sleep(30_us); };
    auto parent = [&](Task child) -> Task {
        co_await child;
        joinedAt = sim.now();
    };
    Task child = spawn(sim, worker());
    spawn(sim, parent(std::move(child)));
    sim.run();
    EXPECT_EQ(joinedAt, 30_us);
}

TEST(Task, JoinOnFinishedTaskCompletesImmediately)
{
    Simulator sim;
    auto worker = []() -> Task { co_return; };
    Task child = spawn(sim, worker());
    sim.run();
    EXPECT_TRUE(child.done());
    bool joined = false;
    auto parent = [&](const Task &c) -> Task {
        co_await c;
        joined = true;
    };
    spawn(sim, parent(child));
    sim.run();
    EXPECT_TRUE(joined);
}

TEST(Task, DoneReflectsCompletion)
{
    Simulator sim;
    Tick woke = 0;
    Task t = spawn(sim, sleeper(sim, 5_us, &woke));
    EXPECT_FALSE(t.done());
    sim.run();
    EXPECT_TRUE(t.done());
}

TEST(Task, CurrentSimulatorAwaitableYieldsOwner)
{
    Simulator sim;
    Simulator *seen = nullptr;
    auto body = [&]() -> Task {
        Simulator &s = co_await currentSimulator();
        seen = &s;
    };
    spawn(sim, body());
    sim.run();
    EXPECT_EQ(seen, &sim);
}

TEST(Task, SuspendedTasksAreDestroyedWithSimulator)
{
    // A server-style task parked forever on a channel must not leak
    // or crash when the simulator is torn down.
    bool destroyed = false;
    struct Flag
    {
        bool *f;
        ~Flag() { *f = true; }
    };
    {
        Simulator sim;
        Channel<int> ch(sim);
        auto body = [&]() -> Task {
            Flag flag{&destroyed};
            for (;;)
                co_await ch.pop(); // never satisfied
        };
        spawn(sim, body());
        sim.run();
        EXPECT_EQ(sim.liveCoroutines(), 1u);
        EXPECT_FALSE(destroyed);
    }
    EXPECT_TRUE(destroyed);
}

TEST(Task, LiveCoroutineCountTracksCompletion)
{
    Simulator sim;
    Tick woke = 0;
    spawn(sim, sleeper(sim, 1_us, &woke));
    spawn(sim, sleeper(sim, 2_us, &woke));
    EXPECT_EQ(sim.liveCoroutines(), 2u);
    sim.run();
    EXPECT_EQ(sim.liveCoroutines(), 0u);
}

TEST(Task, UnspawnedTaskIsDestroyedCleanly)
{
    // Creating a Task and dropping it without spawn() must free the
    // suspended frame.
    auto body = []() -> Task { co_return; };
    Task t = body();
    EXPECT_TRUE(t.valid());
    // destructor runs here
}

TEST(Task, SpawnInsideTask)
{
    Simulator sim;
    Tick childWoke = 0;
    auto parent = [&]() -> Task {
        Simulator &s = co_await currentSimulator();
        co_await sleep(10_us);
        spawn(s, sleeper(s, 5_us, &childWoke));
    };
    spawn(sim, parent());
    sim.run();
    EXPECT_EQ(childWoke, 15_us);
}

/**
 * @file
 * Tests for DeviceMemory (bounds, word helpers, watchpoints) and the
 * PCIe fabric cost model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pcie/fabric.hh"
#include "pcie/memory.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

TEST(DeviceMemory, WriteReadRoundTrip)
{
    pcie::DeviceMemory mem("gpu0", 1024);
    std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    mem.write(100, data);
    std::vector<std::uint8_t> out(5);
    mem.read(100, out);
    EXPECT_EQ(out, data);
}

TEST(DeviceMemory, FreshMemoryIsZeroed)
{
    pcie::DeviceMemory mem("gpu0", 64);
    std::vector<std::uint8_t> out(64);
    mem.read(0, out);
    for (auto b : out)
        EXPECT_EQ(b, 0);
}

TEST(DeviceMemory, WordHelpersAreLittleEndian)
{
    pcie::DeviceMemory mem("gpu0", 64);
    mem.writeU32(0, 0x01020304u);
    std::uint8_t b[4];
    mem.read(0, b);
    EXPECT_EQ(b[0], 0x04);
    EXPECT_EQ(b[3], 0x01);
    EXPECT_EQ(mem.readU32(0), 0x01020304u);

    mem.writeU64(8, 0x1122334455667788ull);
    EXPECT_EQ(mem.readU64(8), 0x1122334455667788ull);
}

TEST(DeviceMemory, ViewExposesWrittenBytes)
{
    pcie::DeviceMemory mem("gpu0", 32);
    std::vector<std::uint8_t> data{9, 8, 7};
    mem.write(4, data);
    auto v = mem.view(4, 3);
    EXPECT_EQ(v[0], 9);
    EXPECT_EQ(v[2], 7);
}

TEST(DeviceMemoryDeath, OutOfBoundsAccessPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    pcie::DeviceMemory mem("gpu0", 16);
    std::vector<std::uint8_t> big(17);
    EXPECT_DEATH(mem.write(0, big), "out of bounds");
    EXPECT_DEATH(mem.write(16, std::vector<std::uint8_t>{1}),
                 "out of bounds");
    std::vector<std::uint8_t> out(1);
    EXPECT_DEATH(mem.read(16, out), "out of bounds");
}

TEST(DeviceMemory, WatchpointFiresOnOverlappingWrite)
{
    pcie::DeviceMemory mem("gpu0", 128);
    int hits = 0;
    std::uint64_t lastOff = 0, lastLen = 0;
    mem.watch(10, 4, [&](std::uint64_t off, std::uint64_t len) {
        ++hits;
        lastOff = off;
        lastLen = len;
    });

    mem.write(0, std::vector<std::uint8_t>(10)); // [0,10): no overlap
    EXPECT_EQ(hits, 0);
    mem.write(8, std::vector<std::uint8_t>(4)); // [8,12): overlaps
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(lastOff, 8u);
    EXPECT_EQ(lastLen, 4u);
    mem.write(14, std::vector<std::uint8_t>(4)); // [14,18): next to it
    EXPECT_EQ(hits, 1);
    mem.writeU32(10, 7); // exact
    EXPECT_EQ(hits, 2);
}

TEST(DeviceMemory, UnwatchStopsNotifications)
{
    pcie::DeviceMemory mem("gpu0", 64);
    int hits = 0;
    auto id = mem.watch(0, 64, [&](auto, auto) { ++hits; });
    mem.writeU32(0, 1);
    EXPECT_EQ(hits, 1);
    mem.unwatch(id);
    mem.writeU32(0, 2);
    EXPECT_EQ(hits, 1);
}

TEST(DeviceMemory, WatcherMayRegisterAnotherWatcher)
{
    pcie::DeviceMemory mem("gpu0", 64);
    int hits = 0;
    mem.watch(0, 4, [&](auto, auto) {
        ++hits;
        mem.watch(4, 4, [&](auto, auto) { ++hits; });
    });
    mem.writeU32(0, 1); // fires first watcher, registers second
    EXPECT_EQ(hits, 1);
    mem.writeU32(4, 1);
    EXPECT_GE(hits, 2);
}

TEST(Fabric, DmaTimeIncludesLatencyAndSerialization)
{
    sim::Simulator s;
    pcie::FabricConfig cfg;
    cfg.dmaLatency = 900_ns;
    cfg.gbps = 50.0;
    pcie::Fabric fab(s, "host0", cfg);
    // 1000 bytes at 50 Gbps = 160 ns.
    EXPECT_EQ(fab.dmaTime(1000), 900_ns + 160_ns);
    EXPECT_EQ(fab.serialization(0), 0u);
}

TEST(Fabric, DmaAwaitsTransferTime)
{
    sim::Simulator s;
    pcie::Fabric fab(s, "host0");
    sim::Tick done = 0;
    auto body = [&]() -> sim::Task {
        co_await fab.dma(1000);
        done = s.now();
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_EQ(done, fab.dmaTime(1000));
}

TEST(Fabric, MmioChargesRoundTrip)
{
    sim::Simulator s;
    pcie::FabricConfig cfg;
    cfg.mmioLatency = 800_ns;
    pcie::Fabric fab(s, "host0", cfg);
    sim::Tick done = 0;
    auto body = [&]() -> sim::Task {
        co_await fab.mmio();
        co_await fab.mmio();
        done = s.now();
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_EQ(done, 1600_ns);
}

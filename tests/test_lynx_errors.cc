/**
 * @file
 * Failure-injection tests: backend timeouts surface as mqueue error
 * statuses (paper §5.1: the metadata carries "error status from the
 * Bluefield (if a connection error is detected)"), oversized payloads
 * panic loudly, and drops are accounted.
 */

#include <gtest/gtest.h>

#include <memory>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "apps/kvstore.hh"
#include "host/node.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/datagen.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

struct Rig
{
    sim::Simulator s;
    net::Network nw{s};
    snic::Bluefield bf{s, nw, "bf0"};
    net::Nic &clientNic = nw.addNic("client");
    host::Node dbHost{s, nw, "db-host"};
    pcie::Fabric fabric{s, "pcie"};
    accel::Gpu gpu{s, "k40m", fabric};
};

} // namespace

TEST(LynxErrors, BackendTimeoutSurfacesAsErrorStatus)
{
    Rig r;
    // NOTE: no KV server is started on db-host; port 11211 is dead.
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", r.gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "facever";
    scfg.port = 7100;
    auto &svc = rt.addService(scfg);
    auto serverQs = rt.makeAccelQueues(svc, accel);
    auto cq = rt.addClientQueue(accel, "db", {r.dbHost.id(), 11211},
                                net::Protocol::Tcp);
    auto dbQ = rt.makeAccelQueue(cq);
    sim::spawn(r.s, apps::runFaceVerWorker(r.gpu, *serverQs[0], *dbQ));
    rt.start();

    auto &cliEp = r.clientNic.bind(net::Protocol::Udp, 40000);
    std::uint8_t verdict = 0xff;
    auto client = [&]() -> sim::Task {
        std::string label = workload::faceLabel(0);
        auto img = workload::synthFace(0, 1);
        net::Message m;
        m.src = {r.clientNic.node(), 40000};
        m.dst = {r.bf.node(), 7100};
        m.proto = net::Protocol::Udp;
        m.payload.assign(label.begin(), label.end());
        m.payload.insert(m.payload.end(), img.begin(), img.end());
        co_await r.clientNic.send(std::move(m));
        net::Message resp = co_await cliEp.recv();
        verdict = resp.payload.at(0);
    };
    sim::spawn(r.s, client());
    r.s.run();

    EXPECT_EQ(verdict,
              static_cast<std::uint8_t>(apps::FaceVerResult::BackendError));
    // The error came through the backend-timeout path (50 ms default).
    EXPECT_EQ(rt.stats().counterValue("backend_timeouts"), 1u);
    EXPECT_EQ(rt.stats().counterValue("backend_responses"), 0u);
}

TEST(LynxErrors, LateResponsesAfterTimeoutAreIgnoredGracefully)
{
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", r.gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7100;
    auto &svc = rt.addService(scfg);
    auto serverQs = rt.makeAccelQueues(svc, accel);
    auto cq = rt.addClientQueue(accel, "db", {r.dbHost.id(), 9000},
                                net::Protocol::Tcp);
    auto dbQ = rt.makeAccelQueue(cq);
    rt.start();

    // A "slow" backend answering after the 50 ms route timeout.
    auto &dbEp = r.dbHost.nic().bind(net::Protocol::Tcp, 9000);
    auto backend = [&]() -> sim::Task {
        net::Message m = co_await dbEp.recv();
        co_await sim::sleep(80_ms); // > responseTimeout
        net::Message resp;
        resp.src = {r.dbHost.id(), 9000};
        resp.dst = m.src;
        resp.proto = net::Protocol::Tcp;
        resp.payload = {1, 2, 3};
        co_await r.dbHost.nic().send(std::move(resp));
    };
    sim::spawn(r.s, backend());

    core::GioMessage got;
    auto accelLogic = [&]() -> sim::Task {
        std::vector<std::uint8_t> req{9};
        co_await dbQ->send(7, req);
        got = co_await dbQ->recv();
    };
    sim::spawn(r.s, accelLogic());
    sim::Task unused;
    (void)unused;
    // Kick the server mqueue path too so the service isn't idle.
    r.s.runUntil(200_ms);

    EXPECT_EQ(got.err, 1u);  // timeout surfaced
    EXPECT_EQ(got.tag, 7u);
    EXPECT_TRUE(got.payload.empty());
    // The late arrival must not crash or mis-match (warned + dropped).
    EXPECT_EQ(rt.stats().counterValue("backend_timeouts"), 1u);
}

TEST(LynxErrors, HealthyBackendStillWorksWithTimeoutMachinery)
{
    Rig r;
    apps::KvStore kv;
    kv.set("k", {42});
    apps::KvServerConfig kcfg;
    kcfg.nic = &r.dbHost.nic();
    kcfg.proto = net::Protocol::Tcp;
    kcfg.stack = calibration::backendTcpXeon();
    kcfg.cores = {&r.dbHost.cores()[0]};
    apps::KvServer kvServer(r.s, kv, kcfg);
    kvServer.start();

    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", r.gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7100;
    auto &svc = rt.addService(scfg);
    (void)svc;
    auto cq = rt.addClientQueue(accel, "db", {r.dbHost.id(), 11211},
                                net::Protocol::Tcp);
    auto dbQ = rt.makeAccelQueue(cq);
    rt.start();

    int rounds = 0;
    auto accelLogic = [&]() -> sim::Task {
        for (int i = 0; i < 20; ++i) {
            auto req = apps::kvEncodeGet("k");
            co_await dbQ->send(static_cast<std::uint32_t>(i), req);
            core::GioMessage resp = co_await dbQ->recv();
            EXPECT_EQ(resp.err, 0u);
            auto kvResp = apps::kvDecodeResponse(resp.payload);
            EXPECT_EQ(kvResp.status, apps::KvStatus::Ok);
            EXPECT_EQ(kvResp.value, (std::vector<std::uint8_t>{42}));
            ++rounds;
        }
    };
    sim::spawn(r.s, accelLogic());
    r.s.run();
    EXPECT_EQ(rounds, 20);
    EXPECT_EQ(rt.stats().counterValue("backend_timeouts"), 0u);
}

TEST(LynxErrorsDeath, OversizedPayloadPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", r.gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    scfg.slotBytes = 256;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    auto worker = [&]() -> sim::Task {
        std::vector<std::uint8_t> tooBig(1024, 1);
        co_await queues[0]->send(0, tooBig);
    };
    EXPECT_DEATH(
        {
            sim::spawn(r.s, worker());
            r.s.run();
        },
        "exceeds slot");
}

TEST(LynxErrors, OversizedNetworkRequestIsDropped)
{
    // A request bigger than the ring slot must be dropped at the
    // dispatcher, not crash the SNIC.
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", r.gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    scfg.slotBytes = 256;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(r.s, apps::runEchoBlock(r.gpu, *queues[0], 0));
    rt.start();

    auto client = [&]() -> sim::Task {
        net::Message m;
        m.src = {r.clientNic.node(), 40000};
        m.dst = {r.bf.node(), 7000};
        m.proto = net::Protocol::Udp;
        m.payload.assign(1024, 0xee); // > slot capacity
        co_await r.clientNic.send(std::move(m));
    };
    r.clientNic.bind(net::Protocol::Udp, 40000);
    sim::spawn(r.s, client());
    r.s.run();
    EXPECT_EQ(svc.dispatcher().stats().counterValue("dropped_oversized"),
              1u);
    EXPECT_EQ(queues[0]->stats().counterValue("rx_msgs"), 0u);
}

TEST(LynxErrors, UdpOverflowDropsAreCountedUnderBatchedLynxPath)
{
    // A line-rate burst into a tiny ingress queue with every batching
    // knob on: the NIC must overflow, and every accepted frame must
    // be accounted — consumed by a listener, dropped at the endpoint
    // queue (rx_drop_udp), or dropped by the dispatcher — with the
    // endpoint's own dropped() agreeing with the NIC counter.
    sim::Simulator s;
    net::Network nw(s);
    snic::BluefieldConfig bcfg;
    bcfg.nic.queueDepth = 8; // force overflow under the burst
    snic::Bluefield bf(s, nw, "bf0", bcfg);
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.mq.maxBatch = 8;
    cfg.dispatchMaxBatch = 8;
    cfg.forwarder.maxBatch = 8;
    cfg.gio.rxBurst = true;
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runEchoBlock(gpu, *queues[0], 0));
    rt.start();

    constexpr int kBurst = 400;
    int got = 0;
    auto &ep = clientNic.bind(net::Protocol::Udp, 40000);
    auto flood = [&]() -> sim::Task {
        for (int i = 0; i < kBurst; ++i) {
            net::Message m;
            m.src = {clientNic.node(), 40000};
            m.dst = {bf.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload.assign(64, static_cast<std::uint8_t>(i));
            co_await clientNic.send(std::move(m));
        }
    };
    auto receiver = [&]() -> sim::Task {
        for (;;) {
            (void)co_await ep.recv();
            ++got;
        }
    };
    sim::spawn(s, flood());
    sim::spawn(s, receiver());
    s.runUntil(100_ms);

    auto &bfStats = bf.nic().stats();
    std::uint64_t drops = bfStats.counterValue("rx_drop_udp");
    EXPECT_GT(drops, 0u);
    // The per-endpoint count and the NIC-wide counter must agree.
    EXPECT_EQ(svc.endpoint().dropped(), drops);
    EXPECT_EQ(svc.endpoint().backlog(), 0u);
    // NIC-level conservation: accepted == consumed + overflow-dropped.
    EXPECT_EQ(bfStats.counterValue("rx_msgs"), kBurst);
    EXPECT_EQ(rt.stats().counterValue("rx_msgs") + drops,
              static_cast<std::uint64_t>(kBurst));
    // Dispatcher-level conservation: everything a listener consumed
    // was dispatched or dropped-with-a-counter, and every dispatched
    // request was answered.
    auto &ds = svc.dispatcher().stats();
    EXPECT_EQ(ds.counterValue("dispatched") +
                  ds.counterValue("dropped_ring_full") +
                  ds.counterValue("dropped_no_tag") +
                  ds.counterValue("dropped_oversized"),
              rt.stats().counterValue("rx_msgs"));
    EXPECT_EQ(static_cast<std::uint64_t>(got),
              ds.counterValue("dispatched"));
}

TEST(LynxErrors, ServiceSurvivesLossyFabric)
{
    // 20% fabric loss: clients time out and retry; every response
    // that does arrive is correct; Lynx state (tags, rings) stays
    // consistent throughout.
    sim::Simulator s;
    net::NetworkConfig ncfg;
    ncfg.lossRate = 0.2;
    net::Network nw(s, ncfg);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    (void)svc;
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runEchoBlock(gpu, *queues[0], 5_us));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 4;
    lg.warmup = 1_ms;
    lg.duration = 60_ms;
    lg.requestTimeout = 1_ms; // fast retry on loss
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 5_ms);

    // ~36% of attempts lose a leg (request or response); each loss
    // costs a 1 ms timeout, so throughput drops sharply but service
    // correctness must be untouched.
    EXPECT_GT(gen.completed(), 300u);
    EXPECT_GT(gen.timeouts(), 50u); // loss really happened
    EXPECT_EQ(gen.validationFailures(), 0u);
    EXPECT_GT(nw.stats().counterValue("dropped_in_fabric"), 100u);
}

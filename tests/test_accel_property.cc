/**
 * @file
 * Property tests for the GPU model: slot-pool invariants under random
 * acquire/release schedules, stream pipelining, and driver-lock
 * fairness.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/gpu.hh"
#include "pcie/fabric.hh"
#include "sim/processor.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

class SlotPoolProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SlotPoolProperty, NeverOversubscribesAndAlwaysDrains)
{
    sim::Simulator s;
    const int capacity = 24;
    accel::SlotPool pool(s, capacity);
    sim::Rng rng(GetParam());

    int inUse = 0, maxInUse = 0, completed = 0;
    const int kernels = 60;
    auto kernel = [&](int blocks, sim::Tick hold) -> sim::Task {
        co_await pool.acquire(blocks);
        inUse += blocks;
        maxInUse = std::max(maxInUse, inUse);
        EXPECT_LE(inUse, capacity);
        co_await sim::sleep(hold);
        inUse -= blocks;
        pool.release(blocks);
        ++completed;
    };
    for (int i = 0; i < kernels; ++i) {
        int blocks = 1 + static_cast<int>(rng.below(16));
        sim::Tick hold = rng.between(1, 300) * 1_us;
        sim::spawn(s, kernel(blocks, hold));
    }
    s.run();
    EXPECT_EQ(completed, kernels);
    EXPECT_EQ(inUse, 0);
    EXPECT_EQ(pool.free(), capacity);
    // Utilization actually happened (not everything serialized).
    EXPECT_GT(maxInUse, capacity / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotPoolProperty,
                         ::testing::Values(1, 7, 42, 99, 1234));

TEST(SlotPoolProperty, FullDeviceKernelsAlternateWithSmallOnes)
{
    sim::Simulator s;
    accel::SlotPool pool(s, 8);
    std::vector<int> order;
    auto kernel = [&](int id, int blocks) -> sim::Task {
        co_await pool.acquire(blocks);
        order.push_back(id);
        co_await sim::sleep(10_us);
        pool.release(blocks);
    };
    sim::spawn(s, kernel(0, 8)); // full device
    sim::spawn(s, kernel(1, 1));
    sim::spawn(s, kernel(2, 8)); // full again: FIFO blocks id 3
    sim::spawn(s, kernel(3, 1));
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(StreamProperty, ManyStreamsKeepDeviceBusy)
{
    // 8 streams x sequential kernels: device executes up to 8
    // concurrently (slots permitting); total time ~ work/8.
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    accel::GpuDriver driver(s, gpu);
    sim::CorePool cores(s, "cpu", 4);

    const int nStreams = 8, kernelsEach = 5;
    int done = 0;
    auto user = [&](int i) -> sim::Task {
        accel::Stream st(s, driver);
        sim::Core &core = cores[static_cast<std::size_t>(i) % 4];
        for (int k = 0; k < kernelsEach; ++k)
            co_await st.launch(core, 20, 200_us);
        co_await st.sync(core);
        ++done;
    };
    for (int i = 0; i < nStreams; ++i)
        sim::spawn(s, user(i));
    s.run();
    EXPECT_EQ(done, nStreams);
    // Serial would be 8*5*200us = 8ms; with 8-way overlap ~1ms+.
    EXPECT_LT(s.now(), 3_ms);
    EXPECT_GT(s.now(), 1_ms);
}

TEST(DriverProperty, LockIsFifoFairAcrossCores)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    accel::GpuDriver driver(s, gpu);
    sim::CorePool cores(s, "cpu", 6);

    std::vector<int> order;
    auto caller = [&](int id) -> sim::Task {
        co_await driver.driverCall(cores[static_cast<std::size_t>(id)]);
        order.push_back(id);
    };
    for (int i = 0; i < 6; ++i)
        sim::spawn(s, caller(i));
    s.run();
    ASSERT_EQ(order.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(GdrProperty, CostIsMonotoneInSize)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    accel::GpuDriver driver(s, gpu);
    sim::Core core(s, "x");

    std::vector<sim::Tick> times;
    auto body = [&]() -> sim::Task {
        for (std::uint64_t sz : {4ull, 64ull, 512ull, 4096ull}) {
            sim::Tick t0 = s.now();
            co_await driver.gdrAccess(core, sz);
            times.push_back(s.now() - t0);
        }
    };
    sim::spawn(s, body());
    s.run();
    ASSERT_EQ(times.size(), 4u);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i], times[i - 1]);
}

TEST(GpuProperty, DeviceLaunchStormRespectsSlotCapacity)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::GpuConfig cfg;
    cfg.blockSlots = 16;
    accel::Gpu gpu(s, "gpu", fabric, cfg);
    int completions = 0;
    auto storm = [&]() -> sim::Task {
        for (int i = 0; i < 40; ++i) {
            co_await gpu.deviceLaunch(8, 50_us,
                                      [&] { ++completions; });
        }
    };
    // Two parents, each spawning children that need half the device.
    sim::spawn(s, storm());
    sim::spawn(s, storm());
    s.run();
    EXPECT_EQ(completions, 80);
    EXPECT_EQ(gpu.slots().free(), 16);
    // 80 kernels of 50us, two at a time => >= 2ms.
    EXPECT_GE(s.now(), 2_ms);
}

/**
 * @file
 * Chaos tier: tenant churn composed with fault-plan packet loss and
 * DCQCN congestion under incast. Each seed runs a fully virtualized
 * dispatch plane (WRR classes + quotas + admission caps) while two
 * tenants are retired mid-run, one tenant appears mid-run, and the
 * fabric drops/marks packets with the software RDMA retry budget
 * live. Every response is byte- and tenant-validated, so a single
 * cross-tenant delivery — e.g. a failover requeue handing tenant A's
 * response to tenant B, or a retired generation's response escaping
 * the forwarder's staleness check — fails the run. Per-tenant
 * accounting must balance exactly: admitted = delivered + stale +
 * lost + still-in-flight, per tenant, per seed.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "host/node.hh"
#include "lynx/calibration.hh"
#include "lynx/gio.hh"
#include "lynx/runtime.hh"
#include "lynx/tenant.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "snic/bluefield.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using lynx::core::TenantId;

namespace {

constexpr double kBottleneckGbps = 0.5;
constexpr std::size_t kPayloadBytes = 1024;
constexpr sim::Tick kWarmup = 5_ms;
constexpr sim::Tick kWindow = 25_ms;
constexpr double kSaturationRps = 61'000.0;

/** Tenants retired mid-run (they keep transmitting afterwards). */
constexpr TenantId kRetiredA = 4;
constexpr TenantId kRetiredB = 5;
/** Tenant whose first packet appears mid-run (auto-registration
 *  under churn). */
constexpr TenantId kLate = 6;
constexpr sim::Tick kRetireAt = 18_ms;
constexpr sim::Tick kLateStart = 12_ms;

/** Payload keyed by (tenant, seq): any cross-tenant or cross-request
 *  delivery mismatches every byte. */
std::vector<std::uint8_t>
payloadFor(TenantId tenant, std::uint64_t seq)
{
    std::vector<std::uint8_t> p(kPayloadBytes);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 193 + b * 29 +
                                         tenant * 7919 + 11);
    return p;
}

net::CongestionConfig
dcqcnConfig()
{
    net::CongestionConfig cc;
    cc.enabled = true;
    cc.egressQueueBytes = 128 * 1024;
    cc.ecnKminBytes = 4 * 1024;
    cc.ecnKmaxBytes = 16 * 1024;
    cc.ecnEnabled = true;
    cc.dcqcnEnabled = true;
    cc.dcqcn.lineRateGbps = kBottleneckGbps;
    cc.dcqcn.minRateGbps = kBottleneckGbps / 50;
    cc.dcqcn.aiGbps = kBottleneckGbps / 100;
    cc.dcqcn.haiGbps = kBottleneckGbps / 20;
    cc.dcqcn.alphaTimer = 275_us;
    cc.dcqcn.rateTimer = 500_us;
    cc.pfc.enabled = true;
    return cc;
}

workload::LoadGenConfig
tenantGen(net::Nic &nic, std::uint32_t node, TenantId tenant,
          std::uint64_t seed)
{
    workload::LoadGenConfig lg;
    lg.nic = &nic;
    lg.target = {node, 7000};
    lg.warmup = kWarmup;
    lg.duration = kWindow;
    lg.tenant = tenant;
    lg.seed = seed * 100 + tenant;
    lg.makeRequest = [tenant](std::uint64_t seq, sim::Rng &) {
        return payloadFor(tenant, seq);
    };
    lg.validate = [tenant](const net::Message &resp) {
        return resp.tenant == tenant &&
               resp.payload == payloadFor(tenant, resp.seq);
    };
    return lg;
}

struct TenantAccount
{
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t stale = 0;
    std::uint64_t lost = 0;
    std::uint64_t delivered = 0;
    std::uint32_t inFlight = 0;
};

struct ChaosResult
{
    std::uint64_t victimCompleted = 0;
    std::uint64_t failures = 0; // summed over every generator
    std::uint64_t ecnMarked = 0;
    std::uint64_t faultDrops = 0;
    std::uint64_t lateCompleted = 0;
    std::vector<TenantAccount> tenants; // index = tenant id
};

/** One churny, lossy, congested multi-tenant run. */
ChaosResult
runChaos(std::uint64_t seed, double dropRate)
{
    sim::Simulator s;

    net::NetworkConfig ncfg;
    ncfg.congestion = dcqcnConfig();
    ncfg.congestion.ecnSeed = 0xecb1 + seed;
    net::Network nw(s, ncfg);

    snic::BluefieldConfig bfc;
    bfc.nic.gbps = kBottleneckGbps;
    snic::Bluefield bf(s, nw, "bf0", bfc);
    host::Node remoteHost(s, nw, "server1");
    accel::Gpu gpu(s, "gpu0", remoteHost.fabric());

    sim::FaultConfig fc;
    fc.dropRate = dropRate;
    fc.seed = seed;
    sim::FaultPlan plan(fc);
    nw.setFaultPlan(&plan);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.congestion = ncfg.congestion;
    cfg.failover.enabled = true; // sw RDMA retry budget + requeues
    cfg.tenancy.enabled = true;
    cfg.tenancy.autoRegister = true;
    cfg.tenancy.defaults.weight = 1;
    cfg.tenancy.defaults.maxInFlight = 64;
    cfg.tenancy.defaults.mqueueQuota = 16;
    core::Runtime rt(s, cfg);

    rdma::RdmaPathModel lp;
    auto &accel = rt.addAccelerator(
        "gpu0", gpu.memory(),
        lp.viaNetwork(calibration::rdmaRemoteExtraOneWay));
    rdma::QpFaultBinding fb;
    fb.plan = &plan;
    fb.initiator = bf.node();
    fb.target = remoteHost.id();
    accel.qp().bindFaults(fb);

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    scfg.ringSlots = 32;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (auto &q : rt.makeAccelQueues(svc, accel)) {
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 2_us));
        queues.push_back(std::move(q));
    }
    rt.start();

    // Tenant 1: the closed-loop victim. Tenants 2..5: open-loop
    // aggressors (4 and 5 get retired mid-run but keep sending).
    auto &victimNic = nw.addNic("victim");
    workload::LoadGenConfig vcfg =
        tenantGen(victimNic, bf.node(), 1, seed);
    vcfg.concurrency = 4;
    vcfg.requestTimeout = 5_ms;
    vcfg.thinkTime = 1_ms;
    workload::LoadGen victim(s, vcfg);

    std::vector<std::unique_ptr<workload::LoadGen>> agg;
    for (TenantId t = 2; t <= kRetiredB; ++t) {
        auto &nic = nw.addNic("agg" + std::to_string(t));
        workload::LoadGenConfig lg = tenantGen(nic, bf.node(), t, seed);
        lg.openRate = 1.5 * kSaturationRps / 4;
        agg.push_back(std::make_unique<workload::LoadGen>(s, lg));
    }

    // Tenant 6 appears mid-run: first packet at kLateStart
    // auto-registers a fresh VF while the plane is under churn.
    auto &lateNic = nw.addNic("late");
    workload::LoadGenConfig lcfg =
        tenantGen(lateNic, bf.node(), kLate, seed);
    lcfg.concurrency = 2;
    lcfg.requestTimeout = 5_ms;
    lcfg.warmup = kLateStart;
    lcfg.duration = kWarmup + kWindow - kLateStart;

    workload::LoadGen late(s, lcfg);

    for (auto &g : agg)
        g->start();
    victim.start();

    auto churn = [&]() -> sim::Task {
        co_await sim::sleep(kLateStart);
        late.start();
        co_await sim::sleep(kRetireAt - kLateStart);
        rt.tenants()->retire(kRetiredA);
        rt.tenants()->retire(kRetiredB);
    };
    sim::spawn(s, churn());

    s.runUntil(victim.windowEnd() + 10_ms);

    ChaosResult out;
    out.victimCompleted = victim.completed();
    out.lateCompleted = late.completed();
    out.failures = victim.validationFailures() + late.validationFailures();
    for (auto &g : agg)
        out.failures += g->validationFailures();
    out.ecnMarked = nw.ecnStats().counterValue("marked");
    out.faultDrops = nw.stats().counterValue("dropped_by_fault");

    core::TenantTable &table = *rt.tenants();
    out.tenants.resize(table.idSpan());
    for (TenantId id = 1; id < table.idSpan(); ++id) {
        sim::StatSet &st = table.statsOf(id);
        TenantAccount &a = out.tenants[id];
        a.admitted = st.counterValue("admitted");
        a.rejected = st.counterValue("rejected");
        a.stale = st.counterValue("stale_dropped");
        a.lost = st.counterValue("lost");
        a.delivered = st.histogram("latency").count();
        a.inFlight = table.inFlight(id);
    }
    return out;
}

} // namespace

/** 12 seeds of churn x loss x DCQCN x incast: the virtualized plane
 *  must keep making byte-exact progress, never mix tenants, balance
 *  every tenant's ledger exactly, and drain retired tenants without
 *  delivering a single stale response. */
TEST(TenantChaos, ChurnUnderLossAndCongestionStaysIsolated)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        // 1-5% loss: retries constantly live, closed loops survive.
        double dropRate = 0.01 + 0.0033 * static_cast<double>(seed);
        ChaosResult r = runChaos(seed, dropRate);
        SCOPED_TRACE("seed " + std::to_string(seed));

        // Progress under the bullying, and the chaos was real.
        EXPECT_GE(r.victimCompleted, 10u);
        EXPECT_GT(r.lateCompleted, 0u); // mid-run tenant got service
        EXPECT_GT(r.ecnMarked, 0u);     // marking was sustained
        EXPECT_GT(r.faultDrops, 0u);    // loss was live

        // Isolation: zero cross-tenant or stale deliveries anywhere
        // (payloads are keyed by tenant and seq).
        EXPECT_EQ(r.failures, 0u);

        // Per-tenant conservation: every admission is accounted as
        // exactly one of delivered / stale-dropped / lost / still
        // in flight — across failover requeues, evacuations and
        // retirement drains. A leak or double-release breaks this.
        ASSERT_EQ(r.tenants.size(), static_cast<std::size_t>(kLate) + 1);
        for (TenantId id = 1; id < r.tenants.size(); ++id) {
            const TenantAccount &a = r.tenants[id];
            SCOPED_TRACE("tenant " + std::to_string(id));
            EXPECT_EQ(a.admitted,
                      a.delivered + a.stale + a.lost + a.inFlight);
            EXPECT_GT(a.admitted, 0u);
        }

        // Retired tenants: rejected arrivals were counted after
        // retirement (they kept transmitting), and their in-flight
        // work drained — the VF never wedges holding slots.
        for (TenantId id : {kRetiredA, kRetiredB}) {
            const TenantAccount &a = r.tenants[id];
            SCOPED_TRACE("retired tenant " + std::to_string(id));
            EXPECT_GT(a.rejected, 0u);
            EXPECT_EQ(a.inFlight, 0u);
        }

        // The victim was never retired, so the staleness machinery
        // must never have eaten one of its responses.
        EXPECT_EQ(r.tenants[1].stale, 0u);
    }
}

/**
 * @file
 * Integration tests of the paper's application services running on
 * the full Lynx stack: LeNet inference (persistent kernel + dynamic
 * parallelism) and Face Verification (multi-tier with a KV backend),
 * each validated against locally computed ground truth.
 */

#include <gtest/gtest.h>

#include <memory>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "baseline/host_server.hh"
#include "host/node.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/datagen.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

TEST(LenetService, ClassifiesLikeTheReferenceModel)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    apps::LeNet net;

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "lenet";
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runLenetServer(gpu, *queues[0], net));
    rt.start();

    auto &cliEp = clientNic.bind(net::Protocol::Udp, 40000);
    int checked = 0;
    auto client = [&]() -> sim::Task {
        for (int d = 0; d < 10; ++d) {
            auto img = workload::synthMnist(d, 3);
            int expect = net.classify(img);
            net::Message m;
            m.src = {clientNic.node(), 40000};
            m.dst = {bf.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = img;
            m.sentAt = s.now();
            co_await clientNic.send(std::move(m));
            net::Message r = co_await cliEp.recv();
            EXPECT_EQ(r.payload.size(), 1u);
            EXPECT_EQ(r.payload[0], expect) << "digit " << d;
            ++checked;
        }
    };
    sim::spawn(s, client());
    s.run();
    EXPECT_EQ(checked, 10);
    // 7 child kernels per request via dynamic parallelism.
    EXPECT_EQ(gpu.stats().counterValue("device_launches"), 70u);
}

TEST(LenetService, PerRequestTimeMatchesCalibration)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    apps::LeNet net;

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runLenetServer(gpu, *queues[0], net));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 1;
    lg.warmup = 5_ms;
    lg.duration = 100_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return workload::synthMnist(static_cast<int>(seq % 10), seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 5_ms);

    // ~278 us of GPU compute + launches + I/O: the paper reports
    // ~300 us latency and 3.5 Kreq/s on Bluefield (§6.3).
    double p50us = sim::toMicroseconds(gen.latency().percentile(50));
    EXPECT_GT(p50us, 280.0);
    EXPECT_LT(p50us, 330.0);
    EXPECT_GT(gen.throughputRps(), 3000.0);
    EXPECT_LT(gen.throughputRps(), 3600.0);
}

namespace {

/** Everything the Face Verification experiment needs. */
struct FaceVerRig
{
    sim::Simulator s;
    net::Network nw{s};
    snic::Bluefield bf{s, nw, "bf0"};
    net::Nic &clientNic = nw.addNic("client");
    host::Node dbHost{s, nw, "db-host"};
    pcie::Fabric fabric{s, "pcie"};
    accel::Gpu gpu{s, "k40m", fabric};
    apps::KvStore kv;
    std::unique_ptr<apps::KvServer> kvServer;

    static constexpr int persons = 16;

    FaceVerRig()
    {
        apps::KvServerConfig kcfg;
        kcfg.nic = &dbHost.nic();
        kcfg.proto = net::Protocol::Tcp;
        kcfg.stack = calibration::vmaXeon();
        kcfg.cores = {&dbHost.cores()[0]};
        kcfg.opCost = calibration::memcachedOpCostXeon;
        kvServer = std::make_unique<apps::KvServer>(s, kv, kcfg);
        kvServer->start();
        for (std::uint32_t p = 0; p < persons; ++p)
            kv.set(workload::faceLabel(p), workload::synthFace(p, 0));
    }

    /** Build a request probing @p probePerson against the enrolled
     *  image of @p claimPerson. */
    std::vector<std::uint8_t>
    request(std::uint32_t claimPerson, std::uint32_t probePerson,
            std::uint64_t variant) const
    {
        std::string label = workload::faceLabel(claimPerson);
        auto img = workload::synthFace(probePerson, variant);
        std::vector<std::uint8_t> req(label.begin(), label.end());
        req.insert(req.end(), img.begin(), img.end());
        return req;
    }

    apps::FaceVerResult
    expected(const std::vector<std::uint8_t> &req) const
    {
        std::string label(req.begin(),
                          req.begin() + apps::faceVerLabelBytes);
        return apps::faceVerDecide(req, kv.get(label));
    }
};

} // namespace

TEST(FaceVerService, MultiTierLynxMatchesGroundTruth)
{
    FaceVerRig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", r.gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "facever";
    scfg.port = 7100;
    scfg.queuesPerAccel = 4; // scaled-down version of the paper's 28
    scfg.slotBytes = 2048;
    auto &svc = rt.addService(scfg);
    auto serverQs = rt.makeAccelQueues(svc, accel);

    std::vector<std::unique_ptr<core::AccelQueue>> dbQs;
    for (int i = 0; i < 4; ++i) {
        auto cq = rt.addClientQueue(accel, "db" + std::to_string(i),
                                    {r.dbHost.id(), 11211},
                                    net::Protocol::Tcp);
        dbQs.push_back(rt.makeAccelQueue(cq));
        sim::spawn(r.s, apps::runFaceVerWorker(r.gpu, *serverQs[i],
                                               *dbQs[i]));
    }
    rt.start();

    auto &cliEp = r.clientNic.bind(net::Protocol::Udp, 40000);
    int checked = 0;
    auto client = [&]() -> sim::Task {
        for (std::uint32_t i = 0; i < 24; ++i) {
            // Mix genuine probes, impostors, and unknown labels.
            std::uint32_t claim = i % FaceVerRig::persons;
            std::uint32_t probe =
                (i % 3 == 0) ? claim : (claim + 1) % FaceVerRig::persons;
            auto req = (i % 5 == 4)
                           ? r.request(200 + i, probe, i) // unknown
                           : r.request(claim, probe, i);
            auto expect = r.expected(req);
            net::Message m;
            m.src = {r.clientNic.node(), 40000};
            m.dst = {r.bf.node(), 7100};
            m.proto = net::Protocol::Udp;
            m.payload = req;
            co_await r.clientNic.send(std::move(m));
            net::Message resp = co_await cliEp.recv();
            EXPECT_EQ(resp.payload.size(), 1u);
            EXPECT_EQ(resp.payload[0], static_cast<std::uint8_t>(expect))
                << "request " << i;
            ++checked;
        }
    };
    sim::spawn(r.s, client());
    r.s.run();
    EXPECT_EQ(checked, 24);
}

TEST(FaceVerService, HostCentricBaselineMatchesGroundTruth)
{
    FaceVerRig r;
    host::Node serverHost(r.s, r.nw, "gpu-host");
    accel::GpuDriver driver(r.s, r.gpu);

    baseline::HostServerConfig cfg;
    cfg.nic = &serverHost.nic();
    cfg.port = 7100;
    cfg.stack = calibration::vmaXeon();
    cfg.cores = {&serverHost.cores()[0], &serverHost.cores()[1]};
    cfg.streams = 28;
    baseline::HostCentricServer server(
        r.s, driver, cfg,
        apps::hostFaceVerHandler(r.s, serverHost.nic(),
                                 {r.dbHost.id(), 11211},
                                 calibration::vmaXeon()));
    server.start();

    auto &cliEp = r.clientNic.bind(net::Protocol::Udp, 40000);
    int checked = 0;
    auto client = [&]() -> sim::Task {
        for (std::uint32_t i = 0; i < 12; ++i) {
            std::uint32_t claim = i % FaceVerRig::persons;
            std::uint32_t probe = (i % 2) ? claim : claim + 1;
            auto req = r.request(claim, probe % FaceVerRig::persons, i);
            auto expect = r.expected(req);
            net::Message m;
            m.src = {r.clientNic.node(), 40000};
            m.dst = {serverHost.id(), 7100};
            m.proto = net::Protocol::Udp;
            m.payload = req;
            co_await r.clientNic.send(std::move(m));
            net::Message resp = co_await cliEp.recv();
            EXPECT_EQ(resp.payload[0], static_cast<std::uint8_t>(expect))
                << "request " << i;
            ++checked;
        }
    };
    sim::spawn(r.s, client());
    r.s.run();
    EXPECT_EQ(checked, 12);
}

TEST(EchoBlockService, EmulatedProcessingTimeIsCharged)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runEchoBlock(gpu, *queues[0], 200_us));
    rt.start();
    // The persistent block holds one slot.
    s.runUntil(1_ms);
    EXPECT_EQ(gpu.slots().free(), gpu.config().blockSlots - 1);

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.warmup = 2_ms;
    lg.duration = 50_ms;
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 2_ms);
    double p50us = sim::toMicroseconds(gen.latency().percentile(50));
    EXPECT_GT(p50us, 215.0);
    EXPECT_LT(p50us, 245.0);
}

TEST(VectorScaleService, MultipliesVectors)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runVectorScaleBlock(gpu, *queues[0], 3, 10_us));
    rt.start();

    auto &cliEp = clientNic.bind(net::Protocol::Udp, 40000);
    std::vector<std::uint8_t> got;
    auto client = [&]() -> sim::Task {
        net::Message m;
        m.src = {clientNic.node(), 40000};
        m.dst = {bf.node(), 7000};
        m.proto = net::Protocol::Udp;
        m.payload = {5, 0, 0, 0, 2, 1, 0, 0}; // [5, 258]
        co_await clientNic.send(std::move(m));
        net::Message r = co_await cliEp.recv();
        got = r.payload.toVector();
    };
    sim::spawn(s, client());
    s.run();
    // [15, 774]
    EXPECT_EQ(got, (std::vector<std::uint8_t>{15, 0, 0, 0, 6, 3, 0, 0}));
}

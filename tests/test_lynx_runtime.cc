/**
 * @file
 * End-to-end integration tests of the Lynx runtime: client → network
 * → SNIC (network server, dispatcher, RDMA) → accelerator mqueue →
 * gio echo logic → forwarder → client. Every payload byte is checked.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "lynx/calibration.hh"
#include "lynx/gio.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "pcie/memory.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using core::AccelQueue;
using core::Runtime;
using core::RuntimeConfig;
using core::ServiceConfig;

namespace {

/** A complete single-machine Lynx deployment with one accelerator. */
struct Deployment
{
    sim::Simulator s;
    net::Network nw{s};
    net::Nic &snicNic = nw.addNic("snic");
    net::Nic &clientNic = nw.addNic("client");
    net::Nic &backendNic = nw.addNic("backend");
    sim::CorePool snicCores{s, "snic.arm", 7};
    pcie::DeviceMemory accelMem{"gpu0.mem", 4 << 20};
    std::unique_ptr<Runtime> rt;

    explicit Deployment(int listeners = 2)
    {
        RuntimeConfig cfg;
        for (std::size_t i = 0; i < snicCores.size(); ++i)
            cfg.cores.push_back(&snicCores[i]);
        cfg.nic = &snicNic;
        cfg.stack = calibration::vmaXeon();
        cfg.listenersPerService = listeners;
        rt = std::make_unique<Runtime>(s, cfg);
    }
};

/** Accelerator-side echo worker: reply with the payload reversed. */
sim::Task
echoWorker(AccelQueue &q)
{
    for (;;) {
        core::GioMessage m = co_await q.recv();
        std::vector<std::uint8_t> resp(m.payload.rbegin(),
                                       m.payload.rend());
        co_await q.send(m.tag, resp);
    }
}

} // namespace

TEST(LynxRuntime, EndToEndEchoOverUdp)
{
    Deployment d;
    auto &accel = d.rt->addAccelerator("gpu0", d.accelMem,
                                       rdma::RdmaPathModel{});
    ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 1;
    auto &svc = d.rt->addService(scfg);
    auto queues = d.rt->makeAccelQueues(svc, accel);
    sim::spawn(d.s, echoWorker(*queues[0]));
    d.rt->start();

    auto &cliEp = d.clientNic.bind(net::Protocol::Udp, 40000);
    std::vector<std::uint8_t> req{1, 2, 3, 4};
    net::Message resp;
    sim::Tick respAt = 0;
    auto client = [&]() -> sim::Task {
        net::Message m;
        m.src = {d.clientNic.node(), 40000};
        m.dst = {d.snicNic.node(), 7000};
        m.proto = net::Protocol::Udp;
        m.payload = req;
        m.sentAt = d.s.now();
        m.seq = 42;
        co_await d.clientNic.send(std::move(m));
        resp = co_await cliEp.recv();
        respAt = d.s.now();
    };
    sim::spawn(d.s, client());
    d.s.run();

    EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{4, 3, 2, 1}));
    EXPECT_EQ(resp.seq, 42u);       // generator bookkeeping echoed
    EXPECT_EQ(resp.src.port, 7000); // response comes from the service
    EXPECT_GT(respAt, 0u);
    // Sanity on the latency scale: an e2e zero-work request is on
    // the order of 10-30 us (paper §6.2: ~19-25 us).
    EXPECT_LT(respAt, 60_us);
    EXPECT_EQ(d.rt->stats().counterValue("rx_msgs"), 1u);
}

TEST(LynxRuntime, ManyRequestsManyQueuesRoundRobin)
{
    Deployment d;
    auto &accel = d.rt->addAccelerator("gpu0", d.accelMem,
                                       rdma::RdmaPathModel{});
    ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    auto &svc = d.rt->addService(scfg);
    auto queues = d.rt->makeAccelQueues(svc, accel);
    ASSERT_EQ(queues.size(), 4u);
    for (auto &q : queues)
        sim::spawn(d.s, echoWorker(*q));
    d.rt->start();

    const int total = 200;
    auto &cliEp = d.clientNic.bind(net::Protocol::Udp, 40000);
    std::map<std::uint64_t, std::vector<std::uint8_t>> responses;
    auto client = [&]() -> sim::Task {
        for (int i = 0; i < total; ++i) {
            net::Message m;
            m.src = {d.clientNic.node(), 40000};
            m.dst = {d.snicNic.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = {static_cast<std::uint8_t>(i),
                         static_cast<std::uint8_t>(i >> 8), 0x5a};
            m.seq = static_cast<std::uint64_t>(i);
            m.sentAt = d.s.now();
            co_await d.clientNic.send(std::move(m));
            // Closed loop: wait for the echo before the next send.
            net::Message r = co_await cliEp.recv();
            responses[r.seq] = r.payload.toVector();
        }
    };
    sim::spawn(d.s, client());
    d.s.run();

    ASSERT_EQ(responses.size(), static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i) {
        std::vector<std::uint8_t> expect{
            0x5a, static_cast<std::uint8_t>(i >> 8),
            static_cast<std::uint8_t>(i)};
        EXPECT_EQ(responses[i], expect) << "request " << i;
    }
    // Round-robin used every queue.
    for (auto &q : queues)
        EXPECT_EQ(q->stats().counterValue("rx_msgs"),
                  static_cast<std::uint64_t>(total) / 4);
}

TEST(LynxRuntime, SourceHashSteersClientsConsistently)
{
    Deployment d;
    auto &accel = d.rt->addAccelerator("gpu0", d.accelMem,
                                       rdma::RdmaPathModel{});
    ServiceConfig scfg;
    scfg.name = "sticky";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    scfg.policy = core::DispatchPolicy::SourceHash;
    auto &svc = d.rt->addService(scfg);
    auto queues = d.rt->makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(d.s, echoWorker(*q));
    d.rt->start();

    auto &cliEp = d.clientNic.bind(net::Protocol::Udp, 41000);
    auto client = [&]() -> sim::Task {
        for (int i = 0; i < 40; ++i) {
            net::Message m;
            m.src = {d.clientNic.node(), 41000};
            m.dst = {d.snicNic.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = {1};
            co_await d.clientNic.send(std::move(m));
            (void)co_await cliEp.recv();
        }
    };
    sim::spawn(d.s, client());
    d.s.run();

    // One source address => exactly one queue got all 40 requests.
    int used = 0;
    for (auto &q : queues) {
        auto n = q->stats().counterValue("rx_msgs");
        EXPECT_TRUE(n == 0 || n == 40) << n;
        used += (n == 40);
    }
    EXPECT_EQ(used, 1);
}

TEST(LynxRuntime, TcpServiceWorks)
{
    Deployment d;
    auto &accel = d.rt->addAccelerator("gpu0", d.accelMem,
                                       rdma::RdmaPathModel{});
    ServiceConfig scfg;
    scfg.name = "echo-tcp";
    scfg.port = 7001;
    scfg.proto = net::Protocol::Tcp;
    auto &svc = d.rt->addService(scfg);
    auto queues = d.rt->makeAccelQueues(svc, accel);
    sim::spawn(d.s, echoWorker(*queues[0]));
    d.rt->start();

    auto &cliEp = d.clientNic.bind(net::Protocol::Tcp, 40000);
    net::Message resp;
    auto client = [&]() -> sim::Task {
        net::Message m;
        m.src = {d.clientNic.node(), 40000};
        m.dst = {d.snicNic.node(), 7001};
        m.proto = net::Protocol::Tcp;
        m.payload = {0xaa, 0xbb};
        co_await d.clientNic.send(std::move(m));
        resp = co_await cliEp.recv();
    };
    sim::spawn(d.s, client());
    d.s.run();
    EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{0xbb, 0xaa}));
    EXPECT_EQ(resp.proto, net::Protocol::Tcp);
}

TEST(LynxRuntime, ClientQueueReachesBackendAndBack)
{
    // Accelerator-initiated I/O: the accel sends a request through a
    // client mqueue to a backend "database" and gets the answer back
    // in the same mqueue (the Face Verification pattern, §6.4).
    Deployment d;
    auto &accel = d.rt->addAccelerator("gpu0", d.accelMem,
                                       rdma::RdmaPathModel{});
    // A service is still needed to trigger accel work.
    ServiceConfig scfg;
    scfg.name = "front";
    scfg.port = 7000;
    auto &svc = d.rt->addService(scfg);
    auto cq = d.rt->addClientQueue(accel, "db",
                                   {d.backendNic.node(), 9000},
                                   net::Protocol::Tcp);
    auto serverQs = d.rt->makeAccelQueues(svc, accel);
    auto dbQ = d.rt->makeAccelQueue(cq);
    d.rt->start();

    // Backend: a trivial "database" that doubles each byte.
    auto &dbEp = d.backendNic.bind(net::Protocol::Tcp, 9000);
    auto backend = [&]() -> sim::Task {
        for (;;) {
            net::Message m = co_await dbEp.recv();
            net::Message r;
            r.src = {d.backendNic.node(), 9000};
            r.dst = m.src;
            r.proto = net::Protocol::Tcp;
            r.seq = m.seq;
            r.sentAt = m.sentAt;
            for (auto b : m.payload)
                r.payload.push_back(static_cast<std::uint8_t>(2 * b));
            co_await d.backendNic.send(std::move(r));
        }
    };
    sim::spawn(d.s, backend());

    // Accelerator: front request -> ask backend -> respond with both.
    auto accelLogic = [&]() -> sim::Task {
        core::GioMessage req = co_await serverQs[0]->recv();
        co_await dbQ->send(1, req.payload);
        core::GioMessage dbResp = co_await dbQ->recv();
        EXPECT_EQ(dbResp.tag, 1u);
        std::vector<std::uint8_t> out = req.payload;
        out.insert(out.end(), dbResp.payload.begin(),
                   dbResp.payload.end());
        co_await serverQs[0]->send(req.tag, out);
    };
    sim::spawn(d.s, accelLogic());

    auto &cliEp = d.clientNic.bind(net::Protocol::Udp, 40000);
    net::Message resp;
    auto client = [&]() -> sim::Task {
        net::Message m;
        m.src = {d.clientNic.node(), 40000};
        m.dst = {d.snicNic.node(), 7000};
        m.proto = net::Protocol::Udp;
        m.payload = {3, 5};
        co_await d.clientNic.send(std::move(m));
        resp = co_await cliEp.recv();
    };
    sim::spawn(d.s, client());
    d.s.run();

    EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{3, 5, 6, 10}));
}

TEST(LynxRuntime, RemoteAcceleratorOnlyDiffersByPath)
{
    // §5.5: a remote accelerator is just a different path model.
    // remoteMem must outlive the Deployment: the runtime's mqueues keep
    // a doorbell watcher on it that ~SnicMqueue unregisters.
    pcie::DeviceMemory remoteMem("remote-gpu.mem", 4 << 20);
    Deployment d;
    auto localPath = rdma::RdmaPathModel{};
    auto remotePath =
        localPath.viaNetwork(calibration::rdmaRemoteExtraOneWay);
    auto &localAccel =
        d.rt->addAccelerator("gpu-local", d.accelMem, localPath);
    auto &remoteAccel =
        d.rt->addAccelerator("gpu-remote", remoteMem, remotePath);

    ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    auto &svc = d.rt->addService(scfg);
    auto localQs = d.rt->makeAccelQueues(svc, localAccel);
    auto remoteQs = d.rt->makeAccelQueues(svc, remoteAccel);
    sim::spawn(d.s, echoWorker(*localQs[0]));
    sim::spawn(d.s, echoWorker(*remoteQs[0]));
    d.rt->start();

    auto &cliEp = d.clientNic.bind(net::Protocol::Udp, 40000);
    std::vector<sim::Tick> latencies;
    auto client = [&]() -> sim::Task {
        for (int i = 0; i < 4; ++i) { // round robin: local, remote, ...
            net::Message m;
            m.src = {d.clientNic.node(), 40000};
            m.dst = {d.snicNic.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = {9};
            m.sentAt = d.s.now();
            sim::Tick t0 = d.s.now();
            co_await d.clientNic.send(std::move(m));
            (void)co_await cliEp.recv();
            latencies.push_back(d.s.now() - t0);
        }
    };
    sim::spawn(d.s, client());
    d.s.run();

    ASSERT_EQ(latencies.size(), 4u);
    // Requests 0,2 hit the local GPU; 1,3 the remote one. The remote
    // round trips add ~8 us (paper §6.3: "about 8 usec").
    sim::Tick localLat = latencies[0];
    sim::Tick remoteLat = latencies[1];
    double extraUs = sim::toMicroseconds(remoteLat - localLat);
    EXPECT_GT(extraUs, 4.0);
    EXPECT_LT(extraUs, 14.0);
    EXPECT_EQ(localQs[0]->stats().counterValue("rx_msgs"), 2u);
    EXPECT_EQ(remoteQs[0]->stats().counterValue("rx_msgs"), 2u);
}

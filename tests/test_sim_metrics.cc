/**
 * @file
 * Unit tests of the unified metrics registry (sim/metrics.hh):
 * registration/deregistration, duplicate-path unique-ification,
 * prefix aggregation, and the JSON snapshot (which must parse).
 * Also checks that building a full Lynx deployment populates the
 * registry with the documented component paths — the integration
 * contract every dashboard/bench consumer relies on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "json_lite.hh"

#include "accel/gpu.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "snic/bluefield.hh"

using namespace lynx;

TEST(Metrics, AddRemoveAndEntriesAreSorted)
{
    sim::MetricsRegistry reg;
    sim::StatSet a, b, c;
    EXPECT_EQ(reg.add("z.last", a), "z.last");
    EXPECT_EQ(reg.add("a.first", b), "a.first");
    EXPECT_EQ(reg.add("m.mid", c), "m.mid");
    EXPECT_EQ(reg.size(), 3u);

    auto entries = reg.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, "a.first");
    EXPECT_EQ(entries[1].first, "m.mid");
    EXPECT_EQ(entries[2].first, "z.last");
    EXPECT_EQ(entries[1].second, &c);

    reg.remove(c);
    EXPECT_EQ(reg.size(), 2u);
    reg.remove(c); // removing twice is harmless
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, DuplicatePathsGetUniqueSuffixes)
{
    sim::MetricsRegistry reg;
    sim::StatSet a, b, c;
    EXPECT_EQ(reg.add("net.nic", a), "net.nic");
    EXPECT_EQ(reg.add("net.nic", b), "net.nic#2");
    EXPECT_EQ(reg.add("net.nic", c), "net.nic#3");

    // Removing the base entry frees its name for the next add.
    reg.remove(a);
    sim::StatSet d;
    EXPECT_EQ(reg.add("net.nic", d), "net.nic");
}

TEST(Metrics, AggregateCounterSumsOverPrefix)
{
    sim::MetricsRegistry reg;
    sim::StatSet n0, n1, other;
    n0.counter("tx_msgs").add(3);
    n1.counter("tx_msgs").add(4);
    other.counter("tx_msgs").add(100);
    reg.add("net.nic.cli0", n0);
    reg.add("net.nic.cli1", n1);
    reg.add("rdma.qp.q0", other);

    EXPECT_EQ(reg.aggregateCounter("net.nic.", "tx_msgs"), 7u);
    EXPECT_EQ(reg.aggregateCounter("", "tx_msgs"), 107u);
    EXPECT_EQ(reg.aggregateCounter("gio.", "tx_msgs"), 0u);
}

TEST(Metrics, JsonSnapshotParsesAndCarriesValues)
{
    sim::MetricsRegistry reg;
    sim::StatSet s;
    s.counter("ops").add(42);
    s.histogram("lat").record(1000);
    s.histogram("lat").record(3000);
    reg.add("comp.with\"quote", s);

    std::ostringstream os;
    reg.json(os);
    jsonlite::Value doc = jsonlite::parse(os.str());

    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.has("comp.with\"quote"));
    const jsonlite::Value &comp = doc.at("comp.with\"quote");
    EXPECT_EQ(comp.at("counters").at("ops").number, 42.0);
    const jsonlite::Value &lat = comp.at("histograms").at("lat");
    EXPECT_EQ(lat.at("count").number, 2.0);
    EXPECT_EQ(lat.at("min").number, 1000.0);
    EXPECT_EQ(lat.at("max").number, 3000.0);
    EXPECT_EQ(lat.at("mean").number, 2000.0);
}

TEST(Metrics, DumpMentionsEveryPath)
{
    sim::MetricsRegistry reg;
    sim::StatSet a, b;
    a.counter("x").add(1);
    reg.add("alpha", a);
    reg.add("beta", b);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("x"), std::string::npos);
}

/**
 * Integration contract: constructing a full Lynx-on-Bluefield echo
 * deployment registers each component under its documented prefix,
 * and destroying the deployment (before the Simulator dies) leaves
 * the registry empty — proving no dangling registrations.
 */
TEST(Metrics, FullDeploymentRegistersDocumentedPaths)
{
    sim::Simulator s;
    {
        net::Network nw(s);
        snic::Bluefield bf(s, nw, "bf0");
        nw.addNic("client");
        pcie::Fabric fabric(s, "pcie");
        accel::Gpu gpu(s, "k40m", fabric);

        core::Runtime rt(s, bf.lynxRuntimeConfig());
        auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                        rdma::RdmaPathModel{});
        core::ServiceConfig scfg;
        scfg.name = "echo";
        scfg.port = 7000;
        auto &svc = rt.addService(scfg);
        auto queues = rt.makeAccelQueues(svc, accel);

        auto hasPrefix = [&](const std::string &prefix) {
            for (const auto &[path, stats] : s.metrics().entries()) {
                if (path.rfind(prefix, 0) == 0)
                    return true;
            }
            return false;
        };
        EXPECT_TRUE(hasPrefix("net.nic."));
        EXPECT_TRUE(hasPrefix("net.fabric"));
        EXPECT_TRUE(hasPrefix("rdma.qp."));
        EXPECT_TRUE(hasPrefix("lynx.mq."));
        EXPECT_TRUE(hasPrefix("lynx.fwd."));
        EXPECT_TRUE(hasPrefix("lynx.dispatch.echo"));
        EXPECT_TRUE(hasPrefix("lynx.runtime"));
        EXPECT_TRUE(hasPrefix("gio."));
    }
    EXPECT_EQ(s.metrics().size(), 0u)
        << "a component forgot to deregister its StatSet";
}

/**
 * @file
 * Unit tests for Semaphore, Latch, and Gate.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

using namespace lynx::sim;
using namespace lynx::sim::literals;

TEST(Semaphore, AcquireBelowCountDoesNotBlock)
{
    Simulator sim;
    Semaphore sem(sim, 2);
    Tick done = maxTick;
    auto body = [&]() -> Task {
        co_await sem.acquire();
        co_await sem.acquire();
        done = sim.now();
    };
    spawn(sim, body());
    sim.run();
    EXPECT_EQ(done, 0u);
    EXPECT_EQ(sem.available(), 0u);
}

TEST(Semaphore, AcquireBlocksUntilRelease)
{
    Simulator sim;
    Semaphore sem(sim, 1);
    Tick secondAcquired = 0;
    auto holder = [&]() -> Task {
        co_await sem.acquire();
        co_await sleep(50_us);
        sem.release();
    };
    auto waiter = [&]() -> Task {
        co_await sem.acquire();
        secondAcquired = sim.now();
        sem.release();
    };
    spawn(sim, holder());
    spawn(sim, waiter());
    sim.run();
    EXPECT_EQ(secondAcquired, 50_us);
    EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, FifoHandoff)
{
    Simulator sim;
    Semaphore sem(sim, 0);
    std::vector<int> order;
    auto waiter = [&](int id) -> Task {
        co_await sem.acquire();
        order.push_back(id);
    };
    for (int i = 0; i < 5; ++i)
        spawn(sim, waiter(i));
    EXPECT_EQ(sem.waiters(), 5u);
    for (int i = 0; i < 5; ++i)
        sem.release();
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Semaphore, TryAcquire)
{
    Simulator sim;
    Semaphore sem(sim, 1);
    EXPECT_TRUE(sem.tryAcquire());
    EXPECT_FALSE(sem.tryAcquire());
    sem.release();
    EXPECT_TRUE(sem.tryAcquire());
}

TEST(Latch, WaitCompletesWhenCountReachesZero)
{
    Simulator sim;
    Latch latch(sim, 3);
    Tick done = 0;
    auto waiter = [&]() -> Task {
        co_await latch.wait();
        done = sim.now();
    };
    auto worker = [&](Tick d) -> Task {
        co_await sleep(d);
        latch.countDown();
    };
    spawn(sim, waiter());
    spawn(sim, worker(10_us));
    spawn(sim, worker(20_us));
    spawn(sim, worker(30_us));
    sim.run();
    EXPECT_EQ(done, 30_us);
}

TEST(Latch, WaitAfterZeroIsImmediate)
{
    Simulator sim;
    Latch latch(sim, 1);
    latch.countDown();
    bool done = false;
    auto waiter = [&]() -> Task {
        co_await latch.wait();
        done = true;
    };
    spawn(sim, waiter());
    EXPECT_TRUE(done); // no suspension needed
    sim.run();
}

TEST(Gate, WaitersReleasedOnOpen)
{
    Simulator sim;
    Gate gate(sim);
    int released = 0;
    auto waiter = [&]() -> Task {
        co_await gate.wait();
        ++released;
    };
    spawn(sim, waiter());
    spawn(sim, waiter());
    EXPECT_EQ(released, 0);
    gate.open();
    sim.run();
    EXPECT_EQ(released, 2);
}

TEST(Gate, OpenGatePassesThrough)
{
    Simulator sim;
    Gate gate(sim, true);
    bool passed = false;
    auto waiter = [&]() -> Task {
        co_await gate.wait();
        passed = true;
    };
    spawn(sim, waiter());
    EXPECT_TRUE(passed);
    sim.run();
}

TEST(Gate, CloseBlocksSubsequentWaiters)
{
    Simulator sim;
    Gate gate(sim, true);
    gate.close();
    bool passed = false;
    auto waiter = [&]() -> Task {
        co_await gate.wait();
        passed = true;
    };
    spawn(sim, waiter());
    sim.run();
    EXPECT_FALSE(passed);
    // Teardown destroys the parked waiter.
}

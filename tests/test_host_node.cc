/**
 * @file
 * Tests for the machine aggregate and the LLC interference model.
 */

#include <gtest/gtest.h>

#include "host/llc.hh"
#include "host/node.hh"
#include "net/network.hh"
#include "sim/histogram.hh"
#include "sim/simulator.hh"

using namespace lynx;
using namespace lynx::sim::literals;

TEST(Node, AggregatesResources)
{
    sim::Simulator s;
    net::Network nw(s);
    host::NodeConfig cfg;
    cfg.cores = 6;
    host::Node n(s, nw, "server0", cfg);
    EXPECT_EQ(n.cores().size(), 6u);
    EXPECT_EQ(n.id(), 0u);
    EXPECT_EQ(n.nic().name(), "server0.nic");
    EXPECT_EQ(n.fabric().name(), "server0.pcie");

    host::Node m(s, nw, "server1");
    EXPECT_EQ(m.id(), 1u);
    EXPECT_EQ(nw.nodeCount(), 2u);
}

TEST(Llc, QuietCacheIsNeutral)
{
    host::LlcModel llc;
    EXPECT_FALSE(llc.noisy());
    EXPECT_DOUBLE_EQ(llc.neighborFactor(), 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(llc.sampleVictimFactor(), 1.0);
    EXPECT_EQ(llc.perturb(100_us), 100_us);
}

TEST(Llc, NeighborSlowdownMatchesConfig)
{
    host::LlcConfig cfg;
    cfg.neighborSlowdown = 1.27;
    host::LlcModel llc(cfg);
    llc.setNoisy(true);
    EXPECT_DOUBLE_EQ(llc.neighborFactor(), 1.27);
}

TEST(Llc, VictimSeesSteadySlowdownAndBursts)
{
    host::LlcConfig cfg;
    cfg.victimSteady = 1.35;
    cfg.burstProbability = 0.02;
    cfg.burstScale = 12.0;
    host::LlcModel llc(cfg, 42);
    llc.setNoisy(true);

    sim::Histogram h;
    const int n = 200000;
    int bursts = 0;
    for (int i = 0; i < n; ++i) {
        double f = llc.sampleVictimFactor();
        EXPECT_GE(f, cfg.victimSteady);
        if (f > cfg.victimSteady + 1.0)
            ++bursts;
        h.record(static_cast<std::uint64_t>(f * 1000));
    }
    // ~2% of operations burst.
    EXPECT_NEAR(static_cast<double>(bursts) / n, 0.02, 0.005);
    // Median is the steady slowdown; p99+ is an order of magnitude.
    EXPECT_NEAR(static_cast<double>(h.percentile(50)) / 1000.0, 1.35, 0.1);
    EXPECT_GT(h.percentile(99.5), 5000u);
}

TEST(Llc, DeterministicAcrossRunsWithSameSeed)
{
    host::LlcModel a({}, 7), b({}, 7);
    a.setNoisy(true);
    b.setNoisy(true);
    for (int i = 0; i < 1000; ++i)
        EXPECT_DOUBLE_EQ(a.sampleVictimFactor(), b.sampleVictimFactor());
}

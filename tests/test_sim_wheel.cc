/**
 * @file
 * Property tests for the timing-wheel calendar.
 *
 * The reference model is the engine's documented contract itself: all
 * events fire in globally ascending (when, scheduling-seq) order. A
 * randomized scheduler front-end drives the wheel through every
 * placement path — level-0 direct hits, multi-level cascades, the
 * far-future overflow heap, the zero-delay ready ring, and events
 * scheduled from inside running events — and checks the observed
 * execution order against a sorted reference trace.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "sim/time.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using lynx::sim::Simulator;
using lynx::sim::Tick;

namespace {

/** One scheduled event: (when, seq) must be the execution order. */
struct Obs
{
    Tick when;
    std::uint64_t id;

    bool
    operator<(const Obs &o) const
    {
        return when != o.when ? when < o.when : id < o.id;
    }

    bool operator==(const Obs &o) const = default;
};

/** Schedule @p count events at random offsets drawn from @p maxDelta,
 *  some rescheduling children from inside their handler, and check
 *  the global firing order. */
void
randomOrderCheck(std::uint64_t seed, int count, Tick maxDelta,
                 int childrenEvery)
{
    Simulator s;
    sim::Rng rng(seed);
    std::vector<Obs> fired;
    std::vector<Obs> expected;
    std::uint64_t nextId = 0;

    // Recursive scheduling: handlers spawn children at future (or
    // equal: delta may be 0) times, exercising in-event placement.
    struct Ctx
    {
        Simulator &s;
        sim::Rng &rng;
        std::vector<Obs> &fired;
        std::vector<Obs> &expected;
        std::uint64_t &nextId;
        Tick maxDelta;
        int childrenEvery;
    } ctx{s, rng, fired, expected, nextId, maxDelta, childrenEvery};

    struct Spawner
    {
        static void
        add(Ctx &c, Tick when, int depth)
        {
            const std::uint64_t id = c.nextId++;
            c.expected.push_back({when, id});
            c.s.schedule(when, [&c, id, depth] {
                c.fired.push_back({c.s.now(), id});
                if (depth > 0 && id % 2 == 0) {
                    const Tick delta = c.rng.below(
                        static_cast<std::uint64_t>(c.maxDelta));
                    add(c, c.s.now() + delta, depth - 1);
                }
            });
        }
    };

    for (int i = 0; i < count; ++i) {
        const Tick when = rng.below(static_cast<std::uint64_t>(maxDelta));
        Spawner::add(ctx, when, i % childrenEvery == 0 ? 2 : 0);
    }
    s.run();

    ASSERT_EQ(fired.size(), expected.size());
    std::stable_sort(expected.begin(), expected.end());
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(s.eventsExecuted(), fired.size());
    EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(TimingWheel, RandomizedOrderLevel0Dense)
{
    // Deltas within one 64-tick block: pure L0 traffic, heavy FIFO
    // tie-breaking at equal timestamps.
    randomOrderCheck(/*seed=*/1, /*count=*/2000, /*maxDelta=*/64,
                     /*childrenEvery=*/3);
}

TEST(TimingWheel, RandomizedOrderMultiLevel)
{
    // Deltas spanning levels 0-3: exercises cascades.
    randomOrderCheck(2, 2000, Tick(1) << 20, 4);
}

TEST(TimingWheel, RandomizedOrderWithOverflow)
{
    // Deltas beyond the 2^30-tick wheel horizon: overflow heap
    // drains back through the wheel.
    randomOrderCheck(3, 1000, Tick(1) << 34, 5);
}

TEST(TimingWheel, EqualTimestampStormIsFifo)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i)
        s.schedule(100, [&order, i] { order.push_back(i); });
    for (int i = 500; i < 1000; ++i)
        s.schedule(50, [&order, i] { order.push_back(i); });
    s.run();
    ASSERT_EQ(order.size(), 1000u);
    // All t=50 events (ids 500..999) first, each group in FIFO order.
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], 500 + i);
        EXPECT_EQ(order[static_cast<std::size_t>(500 + i)], i);
    }
}

TEST(TimingWheel, ZeroDelaySelfSchedulingStaysAtNow)
{
    // scheduleIn(0) from inside a handler goes through the ready
    // ring; time must not move and order must stay FIFO.
    Simulator s;
    std::vector<int> order;
    s.schedule(10, [&] {
        s.scheduleIn(0, [&] { order.push_back(1); });
        s.scheduleIn(0, [&] {
            order.push_back(2);
            s.scheduleIn(0, [&] { order.push_back(3); });
        });
        order.push_back(0);
    });
    s.schedule(11, [&] { order.push_back(4); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(s.now(), 11u);
}

TEST(TimingWheel, ReadyRingInterleavesWithEqualTimestampBucket)
{
    // Events A,B scheduled for t=5 up front; A schedules C at t=5
    // (zero delay) while firing. C's seq is larger than B's, so the
    // order must be A, B, C.
    Simulator s;
    std::vector<char> order;
    s.schedule(5, [&] {
        order.push_back('A');
        s.scheduleIn(0, [&] { order.push_back('C'); });
    });
    s.schedule(5, [&] { order.push_back('B'); });
    s.run();
    EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C'}));
}

TEST(TimingWheel, RunUntilStopsBeforeFarFutureEvent)
{
    Simulator s;
    bool fired = false;
    s.schedule((Tick(1) << 31) + 7, [&] { fired = true; }); // overflow
    s.runUntil(1000);
    EXPECT_FALSE(fired);
    EXPECT_EQ(s.now(), 1000u);
    // Resume across the horizon: the event still fires exactly once,
    // at its exact timestamp.
    s.runUntil((Tick(1) << 31) + 7);
    EXPECT_TRUE(fired);
    EXPECT_EQ(s.now(), (Tick(1) << 31) + 7);
}

TEST(TimingWheel, RunUntilBoundaryIsInclusive)
{
    Simulator s;
    int hits = 0;
    s.schedule(100, [&] { ++hits; });
    s.schedule(101, [&] { ++hits; });
    s.runUntil(100);
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(s.now(), 100u);
    s.runUntil(101);
    EXPECT_EQ(hits, 2);
}

TEST(TimingWheel, ParkInsideStaleHighLevelBucketThenCascade)
{
    // A lone far-future event takes advance()'s express lane, which
    // leaves it filed at a high wheel level when the deadline stops
    // short of it — and runUntil() then parks the clock *inside* that
    // bucket's block (event at 5000 lives in level-2 block
    // [4096, 8191]; the clock parks at 4500). The next advance() must
    // cascade that stale bucket — whose raw block base (4096) is
    // behind the clock — without moving time backwards, and both
    // events must still fire at their exact ticks. The sharded
    // engine's window loop hits this shape constantly (mid-block
    // window deadlines); the debug-assert lanes abort here without
    // the clamp.
    Simulator s;
    std::vector<Tick> at;
    s.schedule(5000, [&] { at.push_back(s.now()); });
    s.runUntil(4500);
    EXPECT_TRUE(at.empty());
    EXPECT_EQ(s.now(), 4500u);
    // A second event defeats the express lane, forcing the slow path
    // to walk the level scan over the stale current-index bucket.
    s.schedule(4800, [&] { at.push_back(s.now()); });
    s.runUntil(6000);
    EXPECT_EQ(at, (std::vector<Tick>{4800, 5000}));
    EXPECT_EQ(s.now(), 6000u);
}

TEST(TimingWheel, StaleBucketIsNotShadowedByLaterLowLevelEvent)
{
    // The nastier variant of the stale-bucket shape: after the
    // mid-block park, a *later* event files at level 1 (block base
    // 6976, beyond the next deadline). The level scan checks level 1
    // before level 2, so without the park repair the stale level-2
    // bucket's earlier event (5000) was shadowed and silently skipped
    // past the deadline — then fired late and out of order.
    Simulator s;
    std::vector<Tick> at;
    s.schedule(5000, [&] { at.push_back(s.now()); });
    s.runUntil(4500);
    s.schedule(7000, [&] { at.push_back(s.now()); });
    s.runUntil(6000);
    EXPECT_EQ(at, (std::vector<Tick>{5000}));
    EXPECT_EQ(s.now(), 6000u);
    s.runUntil(8000);
    EXPECT_EQ(at, (std::vector<Tick>{5000, 7000}));
}

TEST(TimingWheel, RunUntilThenScheduleNearbyOverflowEvent)
{
    // Clamping now() into the same top-level block as a parked
    // overflow event must not move the clock backwards when the
    // overflow later drains.
    Simulator s;
    const Tick horizon = Tick(1) << 30;
    std::vector<Tick> at;
    s.schedule(horizon + 5000, [&] { at.push_back(s.now()); });
    s.runUntil(horizon + 1); // deadline inside the event's block
    EXPECT_TRUE(at.empty());
    EXPECT_EQ(s.now(), horizon + 1);
    s.schedule(horizon + 100, [&] { at.push_back(s.now()); });
    s.run();
    EXPECT_EQ(at, (std::vector<Tick>{horizon + 100, horizon + 5000}));
}

TEST(TimingWheel, StopInsideBucketPreservesRemainder)
{
    // stop() mid-bucket: remaining equal-timestamp events stay queued
    // and fire (in order) on the next run().
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        s.schedule(20, [&, i] {
            order.push_back(i);
            if (i == 1)
                s.stop();
        });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(s.pendingEvents(), 2u);
    s.reset_stop();
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimingWheel, SparseTimerExpressLaneMatchesDenseOrder)
{
    // One lone periodic timer (express lane) interleaved with a
    // burst appearing later: ordering must be seamless.
    Simulator s;
    std::vector<std::pair<Tick, int>> order;
    struct Timer
    {
        static void
        arm(Simulator &s, std::vector<std::pair<Tick, int>> &order, int n)
        {
            if (n == 0)
                return;
            s.scheduleIn(1_us, [&s, &order, n] {
                order.emplace_back(s.now(), 0);
                arm(s, order, n - 1);
            });
        }
    };
    Timer::arm(s, order, 10);
    s.schedule(3500, [&] { order.emplace_back(s.now(), 1); });
    s.schedule(3500, [&] { order.emplace_back(s.now(), 2); });
    s.run();
    ASSERT_EQ(order.size(), 12u);
    std::vector<std::pair<Tick, int>> sorted = order;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_EQ(order, sorted);
    EXPECT_EQ(order[3], (std::pair<Tick, int>{3500, 1}));
    EXPECT_EQ(order[4], (std::pair<Tick, int>{3500, 2}));
}

TEST(TimingWheel, PendingEventCountTracksCalendar)
{
    Simulator s;
    s.schedule(10, [] {});
    s.schedule(10, [] {});
    s.schedule(Tick(1) << 33, [] {}); // overflow
    s.scheduleIn(0, [] {});           // ready ring at t=0
    EXPECT_EQ(s.pendingEvents(), 4u);
    s.runUntil(10);
    EXPECT_EQ(s.pendingEvents(), 1u);
    s.run();
    EXPECT_EQ(s.pendingEvents(), 0u);
    EXPECT_EQ(s.eventsExecuted(), 4u);
}

} // namespace

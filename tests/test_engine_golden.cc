/**
 * @file
 * Determinism goldens for the simulation engine.
 *
 * The scheduler's contract — events fire in (timestamp, scheduling
 * FIFO) order — is what makes every scenario replay bit-exactly. These
 * tests pin a fig8b-scale scale-out scenario (local + remote GPUs
 * behind one Bluefield, multiple concurrent clients) to the exact
 * completion timestamps the seed engine produced, with batching,
 * tracing and fault injection each both off and on. Any engine change
 * that moves a single event — however slightly — fails here.
 *
 * The golden values were captured from the pre-timing-wheel seed
 * engine (std::priority_queue calendar) and must never change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "apps/lenet.hh"
#include "host/node.hh"
#include "lynx/calibration.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/span.hh"
#include "sim/task.hh"
#include "snic/bluefield.hh"
#include "workload/datagen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

struct GoldenKnobs
{
    bool tracing = false;
    bool zeroFaultPlan = false;
    bool batching = false;

    /** Pass an explicit CongestionConfig with every sub-feature
     *  requested but the master switch OFF: the contract is that the
     *  master switch alone decides, and a disabled config is
     *  bit-identical to no config at all. */
    bool congestionOffExplicit = false;

    /** Full congestion plane ON (ECN + DCQCN + PFC at the default
     *  25 Gb/s thresholds) under the scenario's serial closed-loop
     *  load: nothing congests, but every message now crosses the
     *  egress-port queue model and the DCQCN pacer, which shifts
     *  timestamps deterministically — pinned to their own golden. */
    bool congestionOn = false;

    /** Pass a fully-populated TenantConfig (auto-registration,
     *  weights, caps, quotas) with the master switch OFF, and stamp
     *  a tenant id on every request: the contract is that the switch
     *  alone decides, and a disabled tenancy config — even with
     *  tenant ids on the wire — is bit-identical to the seed. */
    bool tenancyOffExplicit = false;

    /** Multi-tenant dispatch plane ON with generous quotas under the
     *  serial closed-loop load: every request now takes the
     *  class-queue + WRR placement path — pinned to its own
     *  golden. */
    bool tenancyOn = false;

    /** Pass a populated RSS config plus a populated-but-disabled
     *  admission config while the policy stays RoundRobin: the
     *  contract is that carrying steering/admission configuration
     *  without engaging it is bit-identical to the seed. */
    bool steerAdmitOffExplicit = false;

    /** Admission control ON with a threshold the serial closed-loop
     *  load never reaches: the occupancy gate is pure arithmetic on
     *  the dispatch path (no suspension), so even *enabled* admission
     *  must not move a single timestamp while nothing sheds. */
    bool admissionOnSerial = false;
};

struct GoldenRun
{
    std::vector<sim::Tick> stamps; ///< completion times, arrival order
    sim::Tick end = 0;             ///< final simulated time
};

/**
 * Fig8b-scale scenario: one Bluefield SmartNIC fronting two local
 * K80s and one remote K80 (reached over the fabric), three closed-loop
 * clients issuing six LeNet classifications each.
 */
GoldenRun
runFig8bScale(const GoldenKnobs &knobs)
{
    sim::Simulator s;
    std::unique_ptr<sim::SpanCollector> spans;
    if (knobs.tracing)
        spans = std::make_unique<sim::SpanCollector>(s);

    net::NetworkConfig ncfg;
    if (knobs.congestionOffExplicit) {
        // Every sub-feature asked for, master switch left off: must
        // be indistinguishable from no config at all.
        ncfg.congestion.ecnEnabled = true;
        ncfg.congestion.dcqcnEnabled = true;
        ncfg.congestion.pfc.enabled = true;
    } else if (knobs.congestionOn) {
        ncfg.congestion.enabled = true;
        ncfg.congestion.ecnEnabled = true;
        ncfg.congestion.dcqcnEnabled = true;
        ncfg.congestion.pfc.enabled = true;
    }
    net::Network network(s, ncfg);
    sim::FaultPlan zeroPlan;
    if (knobs.zeroFaultPlan)
        network.setFaultPlan(&zeroPlan); // all-zero: must not move time

    snic::Bluefield bf(s, network, "bf0");
    net::Nic &clientNic = network.addNic("client");
    host::Node local(s, network, "server0");
    host::Node remoteHost(s, network, "server1");

    accel::GpuConfig k80;
    k80.blockSlots = 208;
    k80.clockScale = calibration::k80ClockScale;
    k80.memBytes = 4ull << 20;
    accel::Gpu gpu0(s, "k80-0", local.fabric(), k80);
    accel::Gpu gpu1(s, "k80-1", local.fabric(), k80);
    accel::Gpu gpu2(s, "k80-r", remoteHost.fabric(), k80);
    apps::LeNet model;

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.congestion = ncfg.congestion;
    if (knobs.batching) {
        cfg.dispatchMaxBatch = 8;
        cfg.dispatchFlushLinger = 2_us;
        cfg.mq.maxBatch = 8;
    }
    if (knobs.tenancyOffExplicit || knobs.tenancyOn) {
        cfg.tenancy.enabled = knobs.tenancyOn;
        cfg.tenancy.autoRegister = true;
        cfg.tenancy.defaults.weight = 2;
        cfg.tenancy.defaults.maxInFlight = 64;
        cfg.tenancy.defaults.mqueueQuota = 32;
    }
    if (knobs.steerAdmitOffExplicit) {
        // Non-default table shape + admission knobs, master switch
        // off, policy untouched: must be invisible.
        cfg.rss.indirectionSize = 256;
        cfg.admission.enabled = false;
        cfg.admission.shedOccupancy = 0.5;
    }
    if (knobs.admissionOnSerial) {
        cfg.admission.enabled = true;
        cfg.admission.shedOccupancy = 0.99;
    }
    core::Runtime rt(s, cfg);
    rdma::RdmaPathModel lp;
    auto &h0 = rt.addAccelerator("g0", gpu0.memory(), lp);
    auto &h1 = rt.addAccelerator("g1", gpu1.memory(), lp);
    auto &h2 = rt.addAccelerator(
        "g2", gpu2.memory(),
        lp.viaNetwork(calibration::rdmaRemoteExtraOneWay));

    core::ServiceConfig scfg;
    scfg.name = "lenet";
    scfg.port = 7000;
    scfg.queuesPerAccel = 1;
    auto &svc = rt.addService(scfg);

    apps::LenetServiceConfig sb;
    if (knobs.batching) {
        sb.maxBatch = 4;
        sb.batchLinger = 2_us;
    }
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    accel::Gpu *gpus[] = {&gpu0, &gpu1, &gpu2};
    core::AccelHandle *handles[] = {&h0, &h1, &h2};
    for (int g = 0; g < 3; ++g) {
        auto qs = rt.makeAccelQueues(svc, *handles[g]);
        sim::spawn(s, apps::runLenetServer(*gpus[g], *qs[0], model, sb));
        for (auto &q : qs)
            queues.push_back(std::move(q));
    }
    rt.start();

    GoldenRun run;
    // Bursts of three back-to-back requests per round so that, with
    // the batching knobs on, concurrent arrivals actually coalesce
    // (a lone in-flight request never triggers batching).
    auto client = [&](int idx) -> sim::Task {
        std::uint16_t port = static_cast<std::uint16_t>(30000 + idx);
        net::Endpoint &ep = clientNic.bind(net::Protocol::Udp, port);
        for (int round = 0; round < 2; ++round) {
            for (int i = 0; i < 3; ++i) {
                net::Message m;
                m.src = {clientNic.node(), port};
                m.dst = {bf.node(), 7000};
                m.proto = net::Protocol::Udp;
                int n = idx * 6 + round * 3 + i;
                m.payload = workload::synthMnist(
                    n % 10, static_cast<std::uint64_t>(n));
                if (knobs.tenancyOffExplicit || knobs.tenancyOn)
                    m.tenant = static_cast<std::uint16_t>(idx + 1);
                co_await clientNic.send(std::move(m));
            }
            for (int i = 0; i < 3; ++i) {
                net::Message r = co_await ep.recv();
                EXPECT_EQ(r.payload.size(), 1u);
                run.stamps.push_back(s.now());
            }
        }
    };
    for (int c = 0; c < 3; ++c)
        sim::spawn(s, client(c));
    s.runUntil(50_ms);

    run.end = s.now();
    EXPECT_EQ(run.stamps.size(), 18u);
    return run;
}

/** Captured from the seed engine; see file comment. */
const std::vector<sim::Tick> &
seedStamps()
{
    static const std::vector<sim::Tick> stamps{
        328590,  328746,  336902,  629549,  629705,  637861,
        930508,  930664,  952574,  1259254, 1259410, 1267566,
        1560213, 1560369, 1568525, 1861172, 1861328, 1869484};
    return stamps;
}

/** Captured from the seed engine with every batching knob on. */
const std::vector<sim::Tick> &
seedStampsBatched()
{
    static const std::vector<sim::Tick> stamps{
        433200,  438517,  441356,  450673,  534219,  539536,
        544853,  734159,  742315,  873443,  1035118, 1043274,
        1278061, 1283378, 1439736, 1445053, 1447892, 1457209};
    return stamps;
}

/**
 * Captured with the full congestion plane enabled (ECN + DCQCN + PFC
 * at the default 25 Gb/s thresholds) under the serial closed-loop
 * load. The shift vs seedStamps() is pure deterministic pacing /
 * egress-queue serialization — no randomness is consumed because the
 * queue never reaches the ECN marking threshold.
 */
const std::vector<sim::Tick> &
seedStampsCongestion()
{
    static const std::vector<sim::Tick> stamps{
        328840,  329090,  337340,  629799,  630049,  638299,
        930758,  931008,  953074,  1259848, 1260098, 1268348,
        1560807, 1561057, 1569307, 1861766, 1862016, 1870266};
    return stamps;
}

/**
 * Captured with the multi-tenant dispatch plane enabled (one tenant
 * per client, generous quotas) under the serial closed-loop load.
 * The class-queue + WRR placement hop is deterministic; any shift vs
 * seedStamps() is the fixed cost of the virtualized path, not
 * scheduling noise. As captured, the stamps are identical to the
 * seed: serial load never finds a ring full or a quota exceeded, so
 * the WRR hop places each message in the same tick it arrived.
 * A future divergence here means the virtualized fast path gained
 * a real delay — that is a finding, not noise.
 */
const std::vector<sim::Tick> &
seedStampsTenancy()
{
    static const std::vector<sim::Tick> stamps{
        328590,  328746,  336902,  629549,  629705,  637861,
        930508,  930664,  952574,  1259254, 1259410, 1267566,
        1560213, 1560369, 1568525, 1861172, 1861328, 1869484};
    return stamps;
}

void
printStamps(const char *tag, const GoldenRun &run)
{
    if (!std::getenv("LYNX_PRINT_GOLDEN"))
        return;
    std::cout << tag << " = {";
    for (std::size_t i = 0; i < run.stamps.size(); ++i)
        std::cout << (i ? ", " : "") << run.stamps[i];
    std::cout << "}\n";
}

TEST(EngineGolden, Fig8bScaleMatchesSeedTimestamps)
{
    GoldenRun run = runFig8bScale({});
    printStamps("base", run);
    EXPECT_EQ(run.stamps, seedStamps());
}

TEST(EngineGolden, TracingDoesNotMoveTimestamps)
{
    GoldenKnobs knobs;
    knobs.tracing = true;
    GoldenRun run = runFig8bScale(knobs);
    EXPECT_EQ(run.stamps, seedStamps());
}

TEST(EngineGolden, ZeroFaultPlanDoesNotMoveTimestamps)
{
    GoldenKnobs knobs;
    knobs.zeroFaultPlan = true;
    GoldenRun run = runFig8bScale(knobs);
    EXPECT_EQ(run.stamps, seedStamps());
}

TEST(EngineGolden, BatchingMatchesSeedBatchedTimestamps)
{
    GoldenKnobs knobs;
    knobs.batching = true;
    GoldenRun run = runFig8bScale(knobs);
    printStamps("batched", run);
    EXPECT_EQ(run.stamps, seedStampsBatched());
}

TEST(EngineGolden, DisabledCongestionConfigMatchesSeedTimestamps)
{
    GoldenKnobs knobs;
    knobs.congestionOffExplicit = true;
    GoldenRun run = runFig8bScale(knobs);
    EXPECT_EQ(run.stamps, seedStamps());
}

TEST(EngineGolden, CongestionOnSerialLoadMatchesCongestionGolden)
{
    GoldenKnobs knobs;
    knobs.congestionOn = true;
    GoldenRun run = runFig8bScale(knobs);
    printStamps("congestion", run);
    EXPECT_EQ(run.stamps, seedStampsCongestion());
}

TEST(EngineGolden, DisabledTenancyConfigMatchesSeedTimestamps)
{
    GoldenKnobs knobs;
    knobs.tenancyOffExplicit = true;
    GoldenRun run = runFig8bScale(knobs);
    EXPECT_EQ(run.stamps, seedStamps());
}

TEST(EngineGolden, TenancyOnSerialLoadMatchesTenancyGolden)
{
    GoldenKnobs knobs;
    knobs.tenancyOn = true;
    GoldenRun run = runFig8bScale(knobs);
    printStamps("tenancy", run);
    EXPECT_EQ(run.stamps, seedStampsTenancy());
}

TEST(EngineGolden, BatchingPlusTracingMatchesSeedBatchedTimestamps)
{
    GoldenKnobs knobs;
    knobs.batching = true;
    knobs.tracing = true;
    GoldenRun run = runFig8bScale(knobs);
    EXPECT_EQ(run.stamps, seedStampsBatched());
}

TEST(EngineGolden, DisabledSteeringAdmissionConfigMatchesSeedTimestamps)
{
    GoldenKnobs knobs;
    knobs.steerAdmitOffExplicit = true;
    GoldenRun run = runFig8bScale(knobs);
    EXPECT_EQ(run.stamps, seedStamps());
}

TEST(EngineGolden, AdmissionOnSerialLoadMatchesSeedTimestamps)
{
    // The occupancy gate never suspends: with the threshold out of
    // reach, enabled admission is arithmetic the timeline cannot see.
    GoldenKnobs knobs;
    knobs.admissionOnSerial = true;
    GoldenRun run = runFig8bScale(knobs);
    EXPECT_EQ(run.stamps, seedStamps());
}

} // namespace

/**
 * @file
 * Tests for accelerator-side dynamic request batching: the
 * occupancy-aware GPU cost model (batchedDuration / batchedLaunch),
 * batched gio I/O (recvBatch / tryRecvBatch / sendBatch), the
 * bit-identical batched LeNet and LBP compute paths, the batched
 * service loops, the vector-scale tail-byte regression, and — most
 * importantly — that defaults (and even batching ON under serial
 * load) reproduce the seed LeNet timestamps exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "apps/kvstore.hh"
#include "apps/lbp.hh"
#include "apps/lenet.hh"
#include "host/node.hh"
#include "lynx/calibration.hh"
#include "lynx/gio.hh"
#include "lynx/mqueue.hh"
#include "lynx/runtime.hh"
#include "lynx/snic_mqueue.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "snic/bluefield.hh"
#include "workload/datagen.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using lynx::core::AccelQueue;
using lynx::core::GioMessage;
using lynx::core::GioTxItem;
using lynx::core::MqueueKind;
using lynx::core::MqueueLayout;
using lynx::core::SnicMqueue;
using lynx::core::SnicMqueueConfig;

namespace {

struct Rig
{
    explicit Rig(std::uint32_t slotBytes = 256)
        : layout{0, 8, slotBytes}
    {
    }

    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};
    MqueueLayout layout;
};

std::vector<std::uint8_t>
randomPayload(sim::Rng &rng, std::size_t maxLen)
{
    std::vector<std::uint8_t> p(1 + rng.below(maxLen));
    for (auto &b : p)
        b = static_cast<std::uint8_t>(rng.below(256));
    return p;
}

} // namespace

/*
 * ----- GPU cost model -----
 */

TEST(GpuBatching, ConfigDefaultsMatchCalibrationConstants)
{
    accel::GpuConfig cfg;
    EXPECT_EQ(cfg.batchMarginalItemCost,
              calibration::gpuBatchMarginalItemCost);
    EXPECT_EQ(cfg.batchOccupancySaturation,
              calibration::gpuBatchOccupancySaturation);
}

TEST(GpuBatching, BatchedDurationModelShape)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);
    const sim::Tick d = 10000;

    // n = 1 reproduces the unbatched duration exactly.
    EXPECT_EQ(gpu.batchedDuration(d, 1), d);

    // Monotone in n, and sublinear below the saturation point.
    const int sat = gpu.config().batchOccupancySaturation;
    sim::Tick prev = gpu.batchedDuration(d, 1);
    for (int n = 2; n <= sat; ++n) {
        sim::Tick cur = gpu.batchedDuration(d, n);
        EXPECT_GE(cur, prev) << "n=" << n;
        EXPECT_LT(cur, d * static_cast<sim::Tick>(n)) << "n=" << n;
        prev = cur;
    }
    // Past saturation every extra item costs full serial time.
    EXPECT_EQ(gpu.batchedDuration(d, sat + 3),
              gpu.batchedDuration(d, sat) + 3 * d);
}

TEST(GpuBatching, BatchedLaunchTickExactWithDeviceLaunchAtN1)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);
    sim::Tick dPlain = 0, dBatched = 0;
    auto run = [&]() -> sim::Task {
        sim::Tick t0 = s.now();
        co_await gpu.deviceLaunch(4, 5_us);
        dPlain = s.now() - t0;
        t0 = s.now();
        co_await gpu.batchedLaunch(4, 5_us, 1);
        dBatched = s.now() - t0;
    };
    sim::spawn(s, run());
    s.run();
    EXPECT_GT(dPlain, 0u);
    EXPECT_EQ(dPlain, dBatched);
    EXPECT_EQ(gpu.stats().counterValue("batched_items"), 1u);
}

/*
 * ----- Bit-identical batched compute -----
 */

TEST(GpuBatching, LenetForwardBatchBitIdenticalToScalarForward)
{
    apps::LeNet net;
    std::vector<std::vector<std::uint8_t>> imgs;
    for (int i = 0; i < 13; ++i)
        imgs.push_back(workload::synthMnist(i % 10,
                                            static_cast<std::uint64_t>(i)));
    std::vector<std::span<const std::uint8_t>> spans(imgs.begin(),
                                                     imgs.end());
    auto batched = net.forwardBatch(spans);
    ASSERT_EQ(batched.size(), imgs.size());
    for (std::size_t i = 0; i < imgs.size(); ++i) {
        auto scalar = net.forward(imgs[i]);
        // Bit-exact: the batched loops preserve the per-image float
        // accumulation order.
        EXPECT_EQ(std::memcmp(batched[i].data(), scalar.data(),
                              sizeof scalar),
                  0)
            << "image " << i;
    }
    auto digits = net.classifyBatch(spans);
    for (std::size_t i = 0; i < imgs.size(); ++i)
        EXPECT_EQ(digits[i], net.classify(imgs[i])) << "image " << i;
}

TEST(GpuBatching, LbpBatchBitIdenticalToScalar)
{
    std::vector<std::vector<std::uint8_t>> probes, enrolled;
    for (std::uint32_t i = 0; i < 9; ++i) {
        probes.push_back(workload::synthFace(i, 1));
        enrolled.push_back(
            workload::synthFace(i % 3 == 0 ? i : i + 5, 0));
    }
    std::vector<apps::LbpPair> pairs;
    for (std::size_t i = 0; i < probes.size(); ++i)
        pairs.push_back({probes[i], enrolled[i]});
    auto dist = apps::lbpDistanceBatch(pairs, 32, 32);
    auto ver = apps::lbpVerifyBatch(pairs, 32, 32,
                                    apps::faceVerThreshold);
    ASSERT_EQ(dist.size(), pairs.size());
    bool sawMatch = false, sawMismatch = false;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_EQ(dist[i],
                  apps::lbpDistance(probes[i], enrolled[i], 32, 32))
            << "pair " << i;
        bool scalar = apps::lbpVerify(probes[i], enrolled[i], 32, 32,
                                      apps::faceVerThreshold);
        EXPECT_EQ(ver[i] != 0, scalar) << "pair " << i;
        (scalar ? sawMatch : sawMismatch) = true;
    }
    EXPECT_TRUE(sawMatch);
    EXPECT_TRUE(sawMismatch);
}

/*
 * ----- Batched gio I/O -----
 */

/** recvBatch must deliver every message intact and in order over a
 *  tiny ring (constant wrap + flow control), with the batch counters
 *  proving multi-message sweeps happened. */
TEST(GpuBatching, RecvBatchFidelityAcrossWrapAndFlowControl)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.maxBatch = 5;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);

    sim::Rng rng(17);
    std::vector<std::vector<std::uint8_t>> msgs;
    for (int i = 0; i < 40; ++i)
        msgs.push_back(randomPayload(rng, r.layout.maxPayload()));

    auto push = [&]() -> sim::Task {
        std::size_t next = 0;
        while (next < msgs.size()) {
            std::size_t n = std::min<std::size_t>(
                1 + rng.below(5), msgs.size() - next);
            std::vector<SnicMqueue::RxItem> items;
            for (std::size_t j = 0; j < n; ++j)
                items.push_back({msgs[next + j],
                                 static_cast<std::uint32_t>(next + j),
                                 0});
            next += co_await mq.rxPushBatch(r.core, items);
            co_await sim::sleep(2_us);
        }
    };
    std::vector<std::vector<std::uint8_t>> got;
    std::vector<std::uint32_t> gotTags;
    auto drain = [&]() -> sim::Task {
        while (got.size() < msgs.size()) {
            std::vector<GioMessage> batch = co_await gio.recvBatch(4);
            EXPECT_GE(batch.size(), 1u);
            EXPECT_LE(batch.size(), 4u);
            for (auto &m : batch) {
                got.push_back(std::move(m.payload));
                gotTags.push_back(m.tag);
            }
        }
    };
    sim::spawn(r.s, push());
    sim::spawn(r.s, drain());
    r.s.run();

    ASSERT_EQ(got.size(), msgs.size());
    EXPECT_EQ(got, msgs);
    for (std::size_t i = 0; i < gotTags.size(); ++i)
        EXPECT_EQ(gotTags[i], i);
    std::uint64_t recvs = gio.stats().counterValue("batch.recvs");
    EXPECT_GT(recvs, 0u);
    EXPECT_EQ(gio.stats().counterValue("batch.recv_msgs"), msgs.size());
    EXPECT_LT(recvs, msgs.size()); // real multi-message sweeps
}

/** sendBatch must commit every response intact and in order through
 *  ring wrap and flow control, pairing with the SNIC's pollTxBatch. */
TEST(GpuBatching, SendBatchFidelityAcrossWrapAndFlowControl)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.maxBatch = 8;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);

    sim::Rng rng(29);
    std::vector<std::vector<std::uint8_t>> msgs;
    for (int i = 0; i < 30; ++i)
        msgs.push_back(randomPayload(rng, r.layout.maxPayload()));

    auto accelSend = [&]() -> sim::Task {
        std::size_t next = 0;
        while (next < msgs.size()) {
            std::size_t n = std::min<std::size_t>(
                1 + rng.below(11), msgs.size() - next);
            std::vector<GioTxItem> items;
            for (std::size_t j = 0; j < n; ++j)
                items.push_back(
                    {static_cast<std::uint32_t>(next + j),
                     msgs[next + j], 0});
            // An 11-item batch over an 8-slot ring forces both the
            // wrap split and the flow-control stall inside one call.
            co_await gio.sendBatch(items);
            next += n;
        }
    };
    std::vector<core::TxMessage> popped;
    auto snicDrain = [&]() -> sim::Task {
        while (popped.size() < msgs.size()) {
            auto batch = co_await mq.pollTxBatch(r.core, 8);
            for (auto &m : batch)
                popped.push_back(std::move(m));
            co_await mq.commitTxCons(r.core);
            if (batch.empty())
                co_await sim::sleep(2_us);
        }
    };
    sim::spawn(r.s, accelSend());
    sim::spawn(r.s, snicDrain());
    r.s.run();

    ASSERT_EQ(popped.size(), msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(popped[i].payload, msgs[i]) << "message " << i;
        EXPECT_EQ(popped[i].tag, i);
    }
    EXPECT_GT(gio.stats().counterValue("batch.sends"), 0u);
    EXPECT_EQ(gio.stats().counterValue("batch.send_msgs"), msgs.size());
}

/** tryRecvBatch never parks: empty ring means an empty result after
 *  one poll, and staged surplus comes back without re-polling. */
TEST(GpuBatching, TryRecvBatchIsNonBlocking)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.maxBatch = 4;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);

    std::vector<std::vector<std::uint8_t>> msgs(
        4, std::vector<std::uint8_t>(32, 0xab));
    auto run = [&]() -> sim::Task {
        // Nothing ready: returns empty, does not park.
        std::vector<GioMessage> none = co_await gio.tryRecvBatch(4);
        EXPECT_TRUE(none.empty());
        std::vector<SnicMqueue::RxItem> items;
        for (std::size_t j = 0; j < msgs.size(); ++j)
            items.push_back(
                {msgs[j], static_cast<std::uint32_t>(j), 0});
        co_await mq.rxPushBatch(r.core, items);
        co_await sim::sleep(20_us);
        // 4 ready, capped at 2; the surplus stays staged...
        std::vector<GioMessage> first = co_await gio.tryRecvBatch(2);
        EXPECT_EQ(first.size(), 2u);
        // ...and is handed out by the next call.
        std::vector<GioMessage> rest = co_await gio.tryRecvBatch(4);
        EXPECT_EQ(rest.size(), 2u);
        EXPECT_EQ(first[0].tag, 0u);
        EXPECT_EQ(rest[1].tag, 3u);
    };
    sim::spawn(r.s, run());
    r.s.run();
}

/*
 * ----- Vector-scale tail regression -----
 */

/** A 1417-byte payload (354 u32 elements + 1 trailing byte) must
 *  come back with every element scaled AND the trailing byte carried
 *  through unchanged — it used to be zeroed. */
TEST(GpuBatching, VectorScaleCarriesNonMultipleOf4TailUnchanged)
{
    Rig r(2048); // roomy slots: the payload is 1417 bytes
    sim::Simulator &s = r.s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);
    SnicMqueue mq(s, "mq", r.qp, r.layout, MqueueKind::Server, {});
    AccelQueue gio(s, "gio", r.mem, r.layout);
    sim::spawn(s, apps::runVectorScaleBlock(gpu, gio, 3, 0));

    std::vector<std::uint8_t> payload(1417);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7 + 1);

    std::vector<std::uint8_t> reply;
    auto run = [&]() -> sim::Task {
        while (!co_await mq.rxPush(r.core, payload, 1))
            co_await sim::sleep(2_us);
        while (reply.empty()) {
            auto popped = co_await mq.pollTx(r.core);
            if (popped) {
                reply = std::move(popped->payload);
                co_await mq.commitTxCons(r.core);
            } else {
                co_await sim::sleep(2_us);
            }
        }
    };
    sim::spawn(s, run());
    s.runUntil(10_ms);

    ASSERT_EQ(reply.size(), payload.size());
    for (std::size_t i = 0; i + 3 < payload.size(); i += 4) {
        std::uint32_t v = static_cast<std::uint32_t>(payload[i]) |
                          (static_cast<std::uint32_t>(payload[i + 1])
                           << 8) |
                          (static_cast<std::uint32_t>(payload[i + 2])
                           << 16) |
                          (static_cast<std::uint32_t>(payload[i + 3])
                           << 24);
        v *= 3;
        EXPECT_EQ(reply[i], static_cast<std::uint8_t>(v));
        EXPECT_EQ(reply[i + 3], static_cast<std::uint8_t>(v >> 24));
    }
    EXPECT_EQ(reply[1416], payload[1416]); // the tail byte survives
}

/*
 * ----- Golden seed equivalence + batched service e2e -----
 */

namespace {

/** Five sequential LeNet requests through the full Lynx-on-host
 *  runtime; returns the client-side completion timestamps and
 *  digits. */
void
runSerialLenet(const apps::LenetServiceConfig &lcfg,
               std::vector<sim::Tick> &stamps,
               std::vector<int> &digits)
{
    sim::Simulator s;
    net::Network network(s);
    net::Nic &client = network.addNic("client");
    host::Node server(s, network, "server");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);
    apps::LeNet model;

    std::vector<sim::Core *> cores{&server.cores()[0]};
    core::RuntimeConfig cfg = snic::hostRuntimeConfig(cores,
                                                      server.nic());
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("gpu", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "lenet";
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runLenetServer(gpu, *queues[0], model, lcfg));
    rt.start();

    net::Endpoint &ep = client.bind(net::Protocol::Udp, 30000);
    auto clientTask = [&]() -> sim::Task {
        for (int i = 0; i < 5; ++i) {
            net::Message m;
            m.src = {client.node(), 30000};
            m.dst = {server.id(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = workload::synthMnist(
                i % 10, static_cast<std::uint64_t>(i));
            co_await client.send(std::move(m));
            net::Message r = co_await ep.recv();
            EXPECT_EQ(r.payload.size(), 1u);
            digits.push_back(r.payload.empty() ? -1 : r.payload[0]);
            stamps.push_back(s.now());
        }
    };
    sim::spawn(s, clientTask());
    s.runUntil(10_ms);
}

const std::vector<sim::Tick> kSeedLenetStamps{296027, 592054, 888081,
                                              1184108, 1480135};
const std::vector<int> kSeedLenetDigits{3, 4, 4, 8, 4};

} // namespace

/** Golden guard: with batching at its defaults the seed LeNet
 *  timestamps (captured before this extension landed) reproduce
 *  bit-exactly. Any timing drift in the default paths fails here. */
TEST(GpuBatching, DefaultsReproduceSeedLenetTimestampsExactly)
{
    std::vector<sim::Tick> stamps;
    std::vector<int> digits;
    runSerialLenet({}, stamps, digits);
    EXPECT_EQ(stamps, kSeedLenetStamps);
    EXPECT_EQ(digits, kSeedLenetDigits);
}

/** The lone-request fast path: batching ON under serial load serves
 *  each request immediately (no linger) and — because recvBatch,
 *  batchedLaunch(n=1) and sendBatch(1) are tick-exact with their
 *  unbatched counterparts — reproduces the seed timestamps exactly. */
TEST(GpuBatching, BatchingOnServesLoneRequestsAtSeedTimestamps)
{
    apps::LenetServiceConfig lcfg;
    lcfg.maxBatch = 8;
    lcfg.batchLinger = 100_us;
    std::vector<sim::Tick> stamps;
    std::vector<int> digits;
    runSerialLenet(lcfg, stamps, digits);
    EXPECT_EQ(stamps, kSeedLenetStamps);
    EXPECT_EQ(digits, kSeedLenetDigits);
}

/** Batched LeNet service end to end: concurrent clients, responses
 *  verified byte-for-byte against the model, real batches formed. */
TEST(GpuBatching, BatchedLenetServiceAnswersByteForByte)
{
    sim::Simulator s;
    net::Network network(s);
    net::Nic &clientNic = network.addNic("client");
    host::Node server(s, network, "server");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);
    apps::LeNet model;

    std::vector<sim::Core *> cores{&server.cores()[0]};
    core::RuntimeConfig cfg = snic::hostRuntimeConfig(cores,
                                                      server.nic());
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("gpu", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "lenet";
    scfg.port = 7000;
    scfg.ringSlots = 32;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    apps::LenetServiceConfig lcfg;
    lcfg.maxBatch = 8;
    lcfg.batchLinger = 20_us;
    sim::spawn(s, apps::runLenetServer(gpu, *queues[0], model, lcfg));
    rt.start();

    constexpr int kClients = 10;
    constexpr int kPerClient = 8;
    int done = 0;
    auto clientTask = [&](int c) -> sim::Task {
        std::uint16_t port = static_cast<std::uint16_t>(41000 + c);
        net::Endpoint &ep = clientNic.bind(net::Protocol::Udp, port);
        for (int i = 0; i < kPerClient; ++i) {
            std::uint64_t v = static_cast<std::uint64_t>(c * 100 + i);
            auto img = workload::synthMnist((c + i) % 10, v);
            int expected = model.classify(img);
            net::Message m;
            m.src = {clientNic.node(), port};
            m.dst = {server.id(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = img;
            co_await clientNic.send(std::move(m));
            net::Message r = co_await ep.recv();
            EXPECT_EQ(r.payload.size(), 1u);
            EXPECT_EQ(r.payload.empty() ? -1 : r.payload[0], expected)
                << "client " << c << " request " << i;
            ++done;
        }
    };
    for (int c = 0; c < kClients; ++c)
        sim::spawn(s, clientTask(c));
    s.runUntil(200_ms);

    EXPECT_EQ(done, kClients * kPerClient);
    // Real batches formed: more messages than sweeps, and the GPU saw
    // multi-item launches.
    std::uint64_t recvs = queues[0]->stats().counterValue("batch.recvs");
    std::uint64_t msgs =
        queues[0]->stats().counterValue("batch.recv_msgs");
    EXPECT_GT(recvs, 0u);
    EXPECT_GT(msgs, recvs);
    EXPECT_GT(gpu.stats().counterValue("batched_items"),
              gpu.stats().counterValue("device_launches"));
}

/** A malformed request inside a batch is answered per-message with
 *  err=1 / 0xff while its batchmates classify normally. */
TEST(GpuBatching, MalformedRequestInsideBatchAnsweredIndividually)
{
    Rig r(2048); // 784-byte images need more than 256-byte slots
    sim::Simulator &s = r.s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);
    apps::LeNet model;
    SnicMqueueConfig mcfg;
    mcfg.maxBatch = 4;
    SnicMqueue mq(s, "mq", r.qp, r.layout, MqueueKind::Server, mcfg);
    AccelQueue gio(s, "gio", r.mem, r.layout);
    apps::LenetServiceConfig lcfg;
    lcfg.maxBatch = 4;
    sim::spawn(s, apps::runLenetServer(gpu, gio, model, lcfg));

    auto good0 = workload::synthMnist(7, 1);
    std::vector<std::uint8_t> bad(100, 0x5a); // not 784 bytes
    auto good1 = workload::synthMnist(2, 2);

    std::vector<core::TxMessage> replies;
    auto run = [&]() -> sim::Task {
        std::vector<SnicMqueue::RxItem> items;
        items.push_back({good0, 10, 0});
        items.push_back({bad, 11, 0});
        items.push_back({good1, 12, 0});
        co_await mq.rxPushBatch(r.core, items);
        while (replies.size() < 3) {
            auto batch = co_await mq.pollTxBatch(r.core, 8);
            for (auto &m : batch)
                replies.push_back(std::move(m));
            co_await mq.commitTxCons(r.core);
            if (batch.empty())
                co_await sim::sleep(5_us);
        }
    };
    sim::spawn(s, run());
    s.runUntil(50_ms);

    ASSERT_EQ(replies.size(), 3u);
    EXPECT_EQ(replies[0].tag, 10u);
    EXPECT_EQ(replies[0].err, 0u);
    EXPECT_EQ(replies[0].payload[0], model.classify(good0));
    EXPECT_EQ(replies[1].tag, 11u);
    EXPECT_EQ(replies[1].err, 1u);
    EXPECT_EQ(replies[1].payload[0], 0xff);
    EXPECT_EQ(replies[2].tag, 12u);
    EXPECT_EQ(replies[2].err, 0u);
    EXPECT_EQ(replies[2].payload[0], model.classify(good1));
}

/*
 * ----- Batched face verification -----
 */

namespace {

/** Run the two-tier face-verification world and return the response
 *  byte of every (client, request) cell. */
std::vector<std::uint8_t>
runFaceVer(apps::ServiceBatchConfig batch, std::uint64_t *batchRecvs)
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bf(s, network, "bf0");
    net::Nic &clientNic = network.addNic("client");
    host::Node dbHost(s, network, "db-host");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);

    apps::KvStore db;
    for (std::uint32_t person = 0; person < 8; ++person)
        db.set(workload::faceLabel(person),
               workload::synthFace(person, 0));
    apps::KvServerConfig kvCfg;
    kvCfg.nic = &dbHost.nic();
    kvCfg.proto = net::Protocol::Tcp;
    kvCfg.stack = calibration::vmaXeon();
    kvCfg.cores = {&dbHost.cores()[0]};
    kvCfg.opCost = calibration::memcachedOpCostXeon;
    apps::KvServer kvServer(s, db, kvCfg);
    kvServer.start();

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("gpu", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "facever";
    scfg.port = 7100;
    scfg.ringSlots = 32;
    auto &svc = rt.addService(scfg);
    auto serverQs = rt.makeAccelQueues(svc, accel);
    auto dbRef = rt.addClientQueue(accel, "db.cq",
                                   {dbHost.id(), kvCfg.port},
                                   net::Protocol::Tcp);
    auto dbQ = rt.makeAccelQueue(dbRef);
    sim::spawn(s, apps::runFaceVerWorker(gpu, *serverQs[0], *dbQ,
                                         batch));
    rt.start();

    constexpr int kClients = 4;
    constexpr int kPerClient = 6;
    std::vector<std::uint8_t> answers(
        static_cast<std::size_t>(kClients * kPerClient), 0xee);
    auto clientTask = [&](int c) -> sim::Task {
        std::uint16_t port = static_cast<std::uint16_t>(42000 + c);
        net::Endpoint &ep = clientNic.bind(net::Protocol::Udp, port);
        for (int i = 0; i < kPerClient; ++i) {
            std::uint32_t claim =
                static_cast<std::uint32_t>((c + i) % 8);
            bool genuine = i % 3 != 2;
            std::uint32_t probe = genuine ? claim : (claim + 3) % 8;
            std::string label = (i == 4)
                                    ? std::string("nobody-here!")
                                    : workload::faceLabel(claim);
            auto img = workload::synthFace(
                probe, 1 + static_cast<std::uint64_t>(i));
            net::Message m;
            m.src = {clientNic.node(), port};
            m.dst = {bf.node(), 7100};
            m.proto = net::Protocol::Udp;
            m.payload.assign(label.begin(), label.end());
            m.payload.insert(m.payload.end(), img.begin(), img.end());
            co_await clientNic.send(std::move(m));
            net::Message r = co_await ep.recv();
            EXPECT_EQ(r.payload.size(), 1u);
            answers[static_cast<std::size_t>(c * kPerClient + i)] =
                r.payload.empty() ? 0xee : r.payload[0];
        }
    };
    for (int c = 0; c < kClients; ++c)
        sim::spawn(s, clientTask(c));
    s.runUntil(300_ms);

    if (batchRecvs)
        *batchRecvs =
            serverQs[0]->stats().counterValue("batch.recvs");
    return answers;
}

} // namespace

/** The batched worker (batched GETs via dbQ sendBatch, one batched
 *  LBP kernel, batched replies) answers every request with exactly
 *  the bytes the unbatched worker produces. */
TEST(GpuBatching, BatchedFaceVerMatchesUnbatchedByteForByte)
{
    std::vector<std::uint8_t> unbatched = runFaceVer({}, nullptr);
    std::uint64_t recvs = 0;
    apps::ServiceBatchConfig bcfg;
    bcfg.maxBatch = 4;
    bcfg.linger = 20_us;
    std::vector<std::uint8_t> batched = runFaceVer(bcfg, &recvs);
    EXPECT_EQ(batched, unbatched);
    EXPECT_GT(recvs, 0u);
    // Every outcome class must actually occur in the pattern.
    auto count = [&](apps::FaceVerResult v) {
        return std::count(batched.begin(), batched.end(),
                          static_cast<std::uint8_t>(v));
    };
    EXPECT_GT(count(apps::FaceVerResult::Match), 0);
    EXPECT_GT(count(apps::FaceVerResult::NoMatch), 0);
    EXPECT_GT(count(apps::FaceVerResult::UnknownLabel), 0);
}

/**
 * @file
 * Tests for the SNIC platforms: Bluefield placement of the Lynx
 * runtime (multi-homed node, ARM cost profile) and the Innova AFU
 * receive pipeline rate.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lynx/gio.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "rdma/qp.hh"
#include "snic/bluefield.hh"
#include "snic/innova.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

TEST(Bluefield, IsItsOwnNetworkNode)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    EXPECT_EQ(bf.cores().size(), 7u);
    EXPECT_EQ(bf.node(), 0u);
    EXPECT_DOUBLE_EQ(bf.nic().config().gbps,
                     calibration::bluefieldGbps);
    auto cfg = bf.lynxRuntimeConfig();
    EXPECT_EQ(cfg.cores.size(), 7u);
    EXPECT_EQ(cfg.nic, &bf.nic());
    // ARM stack is costlier than the Xeon profile.
    EXPECT_GT(cfg.stack.udpRecv, calibration::vmaXeon().udpRecv);
}

TEST(Bluefield, RunsLynxEndToEnd)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::DeviceMemory gpuMem("gpu0.mem", 4 << 20);

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("gpu0", gpuMem, rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    auto echo = [&](core::AccelQueue &q) -> sim::Task {
        for (;;) {
            auto m = co_await q.recv();
            co_await q.send(m.tag, m.payload);
        }
    };
    sim::spawn(s, echo(*queues[0]));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 1;
    lg.warmup = 1_ms;
    lg.duration = 20_ms;
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 2_ms);

    EXPECT_GT(gen.completed(), 100u);
    EXPECT_EQ(gen.validationFailures(), 0u);
    // Bluefield zero-work echo latency: ~25 us in the paper (§6.2);
    // accept the right ballpark.
    double p50us = sim::toMicroseconds(gen.latency().percentile(50));
    EXPECT_GT(p50us, 12.0);
    EXPECT_LT(p50us, 45.0);
}

TEST(Innova, AfuRateLimitsReceiveThroughput)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::InnovaAfu innova(s, nw, "innova0");
    auto &clientNic = nw.addNic("client", {40.0, 300_ns, 65536});
    pcie::DeviceMemory gpuMem("gpu0.mem", 8 << 20);
    rdma::QueuePair qp(s, "qp", gpuMem, rdma::RdmaPathModel{});

    // 8 mqueues, each drained by an accel-side consumer.
    std::vector<std::unique_ptr<core::SnicMqueue>> mqs;
    std::vector<std::unique_ptr<core::AccelQueue>> gios;
    std::vector<core::SnicMqueue *> raw;
    std::uint64_t base = 0;
    std::uint64_t received = 0;
    for (int i = 0; i < 8; ++i) {
        core::MqueueLayout l{base, 64, 256};
        base += l.totalBytes() + 64;
        mqs.push_back(std::make_unique<core::SnicMqueue>(
            s, "mq" + std::to_string(i), qp, l,
            core::MqueueKind::Server));
        gios.push_back(std::make_unique<core::AccelQueue>(
            s, "gio" + std::to_string(i), gpuMem, l));
        raw.push_back(mqs.back().get());
    }
    auto consumer = [&](core::AccelQueue &q) -> sim::Task {
        for (;;) {
            (void)co_await q.recv();
            if (s.now() < 2_ms)
                ++received;
        }
    };
    for (auto &g : gios)
        sim::spawn(s, consumer(*g));
    innova.attachReceiveService(9000, raw);

    // Blast 64 B UDP as fast as the 40G link allows for 2 ms.
    auto blaster = [&]() -> sim::Task {
        while (s.now() < 2_ms) {
            net::Message m;
            m.src = {clientNic.node(), 1};
            m.dst = {innova.node(), 9000};
            m.proto = net::Protocol::Udp;
            m.payload.assign(64, 0xab);
            co_await clientNic.send(std::move(m));
        }
    };
    sim::spawn(s, blaster());
    s.runUntil(4_ms);

    // AFU pipeline: one message per 135 ns => ~7.4 M msg/s; in 2 ms
    // of offered load that is ~14.8 K messages delivered.
    double ratePerSec = static_cast<double>(received) / 2e-3;
    EXPECT_GT(ratePerSec, 5.5e6);
    EXPECT_LT(ratePerSec, 7.6e6);
    EXPECT_GT(innova.stats().counterValue("afu_delivered"), 10'000u);
}

TEST(Innova, FutureWorkEchoServiceRoundTripsWithoutCpu)
{
    // The §5.2 future-work variant: full duplex through the AFU and
    // one-sided-RDMA rings — requests echo back with zero CPU cycles
    // anywhere.
    sim::Simulator s;
    net::Network nw(s);
    snic::InnovaAfu innova(s, nw, "innova0");
    auto &clientNic = nw.addNic("client");
    pcie::DeviceMemory gpuMem("gpu0.mem", 4 << 20);
    rdma::QueuePair qp(s, "qp", gpuMem, rdma::RdmaPathModel{});

    std::vector<std::unique_ptr<core::SnicMqueue>> mqs;
    std::vector<std::unique_ptr<core::AccelQueue>> gios;
    std::vector<core::SnicMqueue *> raw;
    std::uint64_t base = 0;
    for (int i = 0; i < 4; ++i) {
        core::MqueueLayout l{base, 16, 512};
        base += l.totalBytes() + 64;
        mqs.push_back(std::make_unique<core::SnicMqueue>(
            s, "mq" + std::to_string(i), qp, l,
            core::MqueueKind::Server));
        gios.push_back(std::make_unique<core::AccelQueue>(
            s, "gio" + std::to_string(i), gpuMem, l));
        raw.push_back(mqs.back().get());
    }
    auto echoWorker = [&](core::AccelQueue &q) -> sim::Task {
        for (;;) {
            core::GioMessage m = co_await q.recv();
            std::vector<std::uint8_t> resp(m.payload.rbegin(),
                                           m.payload.rend());
            co_await q.send(m.tag, resp);
        }
    };
    for (auto &g : gios)
        sim::spawn(s, echoWorker(*g));
    innova.attachEchoService(9000, raw);

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {innova.node(), 9000};
    lg.concurrency = 8;
    lg.warmup = 1_ms;
    lg.duration = 20_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        std::vector<std::uint8_t> p(32);
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] = static_cast<std::uint8_t>(seq + i);
        return p;
    };
    lg.validate = [](const net::Message &resp) {
        // Reversed payload: check the stamp at the (reversed) end.
        return resp.payload.size() == 32 &&
               resp.payload[31] == static_cast<std::uint8_t>(resp.seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 5_ms);

    EXPECT_GT(gen.completed(), 1000u);
    EXPECT_EQ(gen.validationFailures(), 0u);
    EXPECT_EQ(gen.timeouts(), 0u);
}

/**
 * @file
 * Unit and property tests for Channel: FIFO order, blocking pop,
 * bounded-capacity backpressure, and try operations.
 */

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "sim/channel.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx::sim;
using namespace lynx::sim::literals;

TEST(Channel, TryPushTryPopRoundTrip)
{
    Simulator sim;
    Channel<int> ch(sim);
    EXPECT_TRUE(ch.empty());
    EXPECT_TRUE(ch.tryPush(7));
    EXPECT_EQ(ch.size(), 1u);
    auto v = ch.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    EXPECT_FALSE(ch.tryPop().has_value());
}

TEST(Channel, PopSuspendsUntilPush)
{
    Simulator sim;
    Channel<int> ch(sim);
    int got = 0;
    Tick when = 0;
    auto consumer = [&]() -> Task {
        got = co_await ch.pop();
        when = sim.now();
    };
    auto producer = [&]() -> Task {
        co_await sleep(25_us);
        co_await ch.push(99);
    };
    spawn(sim, consumer());
    spawn(sim, producer());
    sim.run();
    EXPECT_EQ(got, 99);
    EXPECT_EQ(when, 25_us);
}

TEST(Channel, FifoOrderAcrossManyItems)
{
    Simulator sim;
    Channel<int> ch(sim);
    std::vector<int> got;
    auto consumer = [&]() -> Task {
        for (int i = 0; i < 50; ++i)
            got.push_back(co_await ch.pop());
    };
    auto producer = [&]() -> Task {
        for (int i = 0; i < 50; ++i) {
            co_await ch.push(i);
            if (i % 7 == 0)
                co_await sleep(1_us);
        }
    };
    spawn(sim, consumer());
    spawn(sim, producer());
    sim.run();
    ASSERT_EQ(got.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(Channel, MultipleConsumersServedFifo)
{
    Simulator sim;
    Channel<int> ch(sim);
    std::vector<std::pair<int, int>> got; // (consumer, value)
    auto consumer = [&](int id) -> Task {
        int v = co_await ch.pop();
        got.emplace_back(id, v);
    };
    spawn(sim, consumer(0));
    spawn(sim, consumer(1));
    spawn(sim, consumer(2));
    auto producer = [&]() -> Task {
        co_await sleep(1_us);
        co_await ch.push(10);
        co_await ch.push(11);
        co_await ch.push(12);
    };
    spawn(sim, producer());
    sim.run();
    ASSERT_EQ(got.size(), 3u);
    // Longest-waiting consumer gets the first item.
    EXPECT_EQ(got[0], (std::pair<int, int>{0, 10}));
    EXPECT_EQ(got[1], (std::pair<int, int>{1, 11}));
    EXPECT_EQ(got[2], (std::pair<int, int>{2, 12}));
}

TEST(Channel, BoundedCapacityBlocksProducer)
{
    Simulator sim;
    Channel<int> ch(sim, 2);
    Tick thirdPushDone = 0;
    auto producer = [&]() -> Task {
        co_await ch.push(1);
        co_await ch.push(2);
        co_await ch.push(3); // must block until a pop frees space
        thirdPushDone = sim.now();
    };
    auto consumer = [&]() -> Task {
        co_await sleep(100_us);
        (void)co_await ch.pop();
    };
    spawn(sim, producer());
    spawn(sim, consumer());
    sim.run();
    EXPECT_EQ(thirdPushDone, 100_us);
    EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, TryPushFailsWhenFull)
{
    Simulator sim;
    Channel<int> ch(sim, 1);
    EXPECT_TRUE(ch.tryPush(1));
    EXPECT_FALSE(ch.tryPush(2));
    EXPECT_EQ(ch.tryPop().value(), 1);
    EXPECT_TRUE(ch.tryPush(2));
}

TEST(Channel, MovesNonCopyableItems)
{
    Simulator sim;
    Channel<std::unique_ptr<int>> ch(sim);
    int got = 0;
    auto consumer = [&]() -> Task {
        auto p = co_await ch.pop();
        got = *p;
    };
    auto producer = [&]() -> Task {
        co_await ch.push(std::make_unique<int>(31));
    };
    spawn(sim, consumer());
    spawn(sim, producer());
    sim.run();
    EXPECT_EQ(got, 31);
}

/**
 * Property: for random interleavings of producers/consumers, every
 * pushed item is popped exactly once and per-producer order holds.
 */
class ChannelProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChannelProperty, NoLossNoDuplicationUnderRandomSchedules)
{
    Simulator sim;
    Rng rng(GetParam());
    const std::size_t cap = 1 + rng.below(8);
    Channel<std::pair<int, int>> ch(sim, cap);
    const int producers = 1 + static_cast<int>(rng.below(4));
    const int itemsEach = 20;

    std::vector<std::vector<int>> seen(producers);
    auto producer = [&](int id, std::uint64_t seed) -> Task {
        Rng r(seed);
        for (int i = 0; i < itemsEach; ++i) {
            co_await ch.push({id, i});
            if (r.chance(0.5))
                co_await sleep(r.between(1, 20) * 1_us);
        }
    };
    auto consumer = [&](std::uint64_t seed) -> Task {
        Rng r(seed);
        for (int i = 0; i < producers * itemsEach; ++i) {
            auto [id, v] = co_await ch.pop();
            seen[id].push_back(v);
            if (r.chance(0.3))
                co_await sleep(r.between(1, 10) * 1_us);
        }
    };
    for (int p = 0; p < producers; ++p)
        spawn(sim, producer(p, GetParam() * 31 + p));
    spawn(sim, consumer(GetParam() * 17 + 1));
    sim.run();

    for (int p = 0; p < producers; ++p) {
        ASSERT_EQ(seen[p].size(), static_cast<std::size_t>(itemsEach));
        for (int i = 0; i < itemsEach; ++i)
            EXPECT_EQ(seen[p][i], i) << "producer " << p;
    }
    EXPECT_TRUE(ch.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/**
 * @file
 * Minimal recursive-descent JSON parser for tests that must prove an
 * exported document (Chrome trace, metrics snapshot) is well-formed
 * and round-trips — *not* a general-purpose library. Supports
 * objects, arrays, strings (with \" and \\ escapes), numbers, true/
 * false/null. Throws std::runtime_error on malformed input so a
 * failing parse surfaces as a test failure.
 */

#ifndef LYNX_TESTS_JSON_LITE_HH
#define LYNX_TESTS_JSON_LITE_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsonlite {

struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> items;
    std::map<std::string, Value> fields;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    bool has(const std::string &key) const
    {
        return kind == Kind::Object && fields.count(key) > 0;
    }

    const Value &
    at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (kind != Kind::Object || it == fields.end())
            throw std::runtime_error("json: missing key " + key);
        return it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Value
    parse()
    {
        Value v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at offset " +
                                 std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const std::string &word)
    {
        if (s_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    Value
    value()
    {
        char c = peek();
        switch (c) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't':
        case 'f':
        case 'n': return keyword();
        default: return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Value v;
        v.kind = Value::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            Value key = string();
            expect(':');
            v.fields[key.str] = value();
            char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Value
    array()
    {
        expect('[');
        Value v;
        v.kind = Value::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Value
    string()
    {
        expect('"');
        Value v;
        v.kind = Value::Kind::String;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("bad escape");
                char e = s_[pos_++];
                switch (e) {
                case '"': v.str += '"'; break;
                case '\\': v.str += '\\'; break;
                case '/': v.str += '/'; break;
                case 'n': v.str += '\n'; break;
                case 't': v.str += '\t'; break;
                case 'r': v.str += '\r'; break;
                default: fail("unsupported escape");
                }
            } else {
                v.str += c;
            }
        }
        if (pos_ >= s_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    Value
    keyword()
    {
        Value v;
        if (consume("true")) {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
        } else if (consume("false")) {
            v.kind = Value::Kind::Bool;
            v.boolean = false;
        } else if (consume("null")) {
            v.kind = Value::Kind::Null;
        } else {
            fail("unknown keyword");
        }
        return v;
    }

    Value
    number()
    {
        std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        Value v;
        v.kind = Value::Kind::Number;
        v.number = std::strtod(s_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

inline Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace jsonlite

#endif // LYNX_TESTS_JSON_LITE_HH

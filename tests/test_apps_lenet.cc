/**
 * @file
 * Tests for the LeNet-5 forward pass: shape checks, softmax
 * invariants, determinism, and input sensitivity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/lenet.hh"
#include "workload/datagen.hh"

using lynx::apps::LeNet;
using lynx::workload::synthMnist;

TEST(LeNet, SoftmaxIsAProbabilityDistribution)
{
    LeNet net;
    auto img = synthMnist(3, 0);
    auto probs = net.forward(img);
    float sum = 0;
    for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        EXPECT_LE(p, 1.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(LeNet, DeterministicForSameSeedAndInput)
{
    LeNet a(42), b(42);
    auto img = synthMnist(7, 5);
    auto pa = a.forward(img);
    auto pb = b.forward(img);
    for (int i = 0; i < LeNet::numClasses; ++i)
        EXPECT_FLOAT_EQ(pa[i], pb[i]);
}

TEST(LeNet, DifferentSeedsGiveDifferentNetworks)
{
    LeNet a(1), b(2);
    auto img = synthMnist(0, 0);
    auto pa = a.forward(img);
    auto pb = b.forward(img);
    bool anyDiff = false;
    for (int i = 0; i < LeNet::numClasses; ++i)
        anyDiff |= std::abs(pa[i] - pb[i]) > 1e-6f;
    EXPECT_TRUE(anyDiff);
}

TEST(LeNet, ClassifyReturnsArgmaxInRange)
{
    LeNet net;
    for (int d = 0; d < 10; ++d) {
        auto img = synthMnist(d, 1);
        int cls = net.classify(img);
        EXPECT_GE(cls, 0);
        EXPECT_LT(cls, 10);
        auto probs = net.forward(img);
        for (float p : probs)
            EXPECT_LE(p, probs[static_cast<std::size_t>(cls)] + 1e-7f);
    }
}

TEST(LeNet, OutputDependsOnInput)
{
    LeNet net;
    std::set<int> classes;
    bool outputsDiffer = false;
    auto ref = net.forward(synthMnist(0, 0));
    for (int d = 0; d < 10; ++d) {
        auto p = net.forward(synthMnist(d, 0));
        classes.insert(net.classify(synthMnist(d, 0)));
        for (int i = 0; i < 10; ++i)
            outputsDiffer |= std::abs(p[i] - ref[i]) > 1e-6f;
    }
    EXPECT_TRUE(outputsDiffer);
    // An untrained (random-weight) net still separates some inputs.
    EXPECT_GE(classes.size(), 2u);
}

TEST(LeNet, BlankAndFullImagesProduceFiniteOutputs)
{
    LeNet net;
    std::vector<std::uint8_t> blank(LeNet::imageBytes, 0);
    std::vector<std::uint8_t> full(LeNet::imageBytes, 255);
    for (auto &img : {blank, full}) {
        auto p = net.forward(img);
        for (float v : p)
            EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(LeNetDeath, WrongImageSizePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    LeNet net;
    std::vector<std::uint8_t> tiny(10, 0);
    EXPECT_DEATH(net.forward(tiny), "28x28");
}

#include "apps/lenet_train.hh"

using lynx::apps::LenetExample;
using lynx::apps::LeNetTrainer;
using lynx::apps::synthTrainingSet;

TEST(LeNetTrain, SyntheticSetHasAllDigits)
{
    auto set = synthTrainingSet(5, 0);
    ASSERT_EQ(set.size(), 50u);
    int counts[10] = {};
    for (const auto &ex : set) {
        ASSERT_GE(ex.label, 0);
        ASSERT_LT(ex.label, 10);
        ASSERT_EQ(ex.image.size(), 784u);
        ++counts[ex.label];
    }
    for (int d = 0; d < 10; ++d)
        EXPECT_EQ(counts[d], 5);
}

TEST(LeNetTrain, SingleStepReducesBatchLoss)
{
    auto data = synthTrainingSet(2, 0);
    LeNetTrainer t(3);
    double l0 = t.step(data, 0.05f);
    // Re-evaluating the same batch: loss must have dropped.
    double l1 = t.step(data, 0.05f);
    EXPECT_LT(l1, l0);
}

TEST(LeNetTrain, GradientMatchesFiniteDifference)
{
    // Spot-check backprop against a numerical derivative of the
    // loss w.r.t. one fc3 weight and one conv1 weight.
    auto data = synthTrainingSet(1, 0);
    std::vector<LenetExample> one{data[3]};

    auto lossAt = [&](const lynx::apps::LeNetParams &p) {
        LeNetTrainer probe(p);
        // A zero-lr step returns the batch loss without changing p.
        return probe.step(one, 0.0f);
    };

    lynx::apps::LeNetParams base =
        lynx::apps::LeNetParams::random(11);
    const float eps = 5e-3f;
    for (auto which : {0, 1}) {
        // Analytic gradient recovered from one SGD step: after a step
        // with learning rate lr, w' = w - lr * g => g = (w - w') / lr.
        // lr must be large enough that the float update survives
        // rounding against |w| ~ 0.1.
        LeNetTrainer t(base);
        const float lr = 2e-3f;
        t.step(one, lr);
        float before = which == 0 ? base.fc3W[5] : base.conv1W[7];
        float after =
            which == 0 ? t.params().fc3W[5] : t.params().conv1W[7];
        double analytic = (before - after) / lr;

        lynx::apps::LeNetParams plus = base, minus = base;
        (which == 0 ? plus.fc3W[5] : plus.conv1W[7]) += eps;
        (which == 0 ? minus.fc3W[5] : minus.conv1W[7]) -= eps;
        double numeric = (lossAt(plus) - lossAt(minus)) / (2.0 * eps);
        EXPECT_NEAR(analytic, numeric,
                    std::max(0.1 * std::abs(numeric), 2e-2))
            << "param set " << which;
    }
}

TEST(LeNetTrain, ReachesHighHeldOutAccuracy)
{
    auto train = synthTrainingSet(30, 0);
    auto test = synthTrainingSet(8, 100); // unseen variants
    LeNetTrainer t(7);
    double before = t.accuracy(test);
    t.train(train, 3, 16, 0.08f, 1);
    double after = t.accuracy(test);
    EXPECT_LT(before, 0.4);
    EXPECT_GT(after, 0.9);
}

TEST(LeNetTrain, TrainedParamsLoadIntoInferenceNet)
{
    auto train = synthTrainingSet(20, 0);
    LeNetTrainer t(7);
    t.train(train, 2, 16, 0.08f, 1);
    lynx::apps::LeNet net(t.params());
    auto img = lynx::workload::synthMnist(4, 55);
    EXPECT_EQ(net.classify(img), 4);
}

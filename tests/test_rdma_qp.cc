/**
 * @file
 * Tests for the RDMA RC queue pair: write delivery and completion
 * timing, RC ordering, read snapshots, barriers, and the remote-path
 * extension.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

rdma::RdmaPathModel
testPath()
{
    rdma::RdmaPathModel p;
    p.postCost = 700_ns;
    p.nicLatency = 600_ns;
    p.oneWay = 900_ns;
    p.gbps = 50.0;
    p.completionDelay = 900_ns;
    return p;
}

} // namespace

TEST(RdmaQp, WriteLandsInTargetMemory)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 256);
    rdma::QueuePair qp(s, "qp0", mem, testPath());
    std::vector<std::uint8_t> data{1, 2, 3, 4};

    auto body = [&]() -> sim::Task { co_await qp.write(16, data); };
    sim::spawn(s, body());
    s.run();
    std::vector<std::uint8_t> out(4);
    mem.read(16, out);
    EXPECT_EQ(out, data);
}

TEST(RdmaQp, WriteTimingMatchesPathModel)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 256);
    auto path = testPath();
    rdma::QueuePair qp(s, "qp0", mem, path);
    std::vector<std::uint8_t> data(100); // 100B @ 50G = 16 ns

    sim::Tick deliveredAt = 0;
    mem.watch(0, 100, [&](auto, auto) { deliveredAt = s.now(); });

    sim::Tick completedAt = 0;
    auto body = [&]() -> sim::Task {
        co_await qp.write(0, data);
        completedAt = s.now();
    };
    sim::spawn(s, body());
    s.run();
    sim::Tick expectDeliver = 600_ns + 16 + 900_ns;
    EXPECT_EQ(deliveredAt, expectDeliver);
    EXPECT_EQ(completedAt, expectDeliver + 900_ns);
}

TEST(RdmaQp, PostedWritesApplyInOrder)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 64);
    rdma::QueuePair qp(s, "qp0", mem, testPath());

    std::vector<int> order;
    mem.watch(0, 4, [&](auto, auto) { order.push_back(0); });
    mem.watch(32, 4, [&](auto, auto) { order.push_back(1); });

    // Post both back-to-back from plain (non-coroutine) code.
    qp.postWrite(0, std::vector<std::uint8_t>(4, 0xaa));
    qp.postWrite(32, std::vector<std::uint8_t>(4, 0xbb));
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(mem.readU32(0), 0xaaaaaaaau);
    EXPECT_EQ(mem.readU32(32), 0xbbbbbbbbu);
}

TEST(RdmaQp, DoorbellAfterDataOrdering)
{
    // The Lynx mqueue relies on RC ordering: payload write, then
    // doorbell write. The doorbell watcher must observe the payload.
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 256);
    rdma::QueuePair qp(s, "qp0", mem, testPath());

    bool payloadVisibleAtDoorbell = false;
    mem.watch(128, 4, [&](auto, auto) {
        payloadVisibleAtDoorbell = (mem.readU32(0) == 0x12345678u);
    });

    auto body = [&]() -> sim::Task {
        std::vector<std::uint8_t> payload{0x78, 0x56, 0x34, 0x12};
        qp.postWrite(0, payload);
        qp.postWrite(128, std::vector<std::uint8_t>{1, 0, 0, 0});
        co_return;
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_TRUE(payloadVisibleAtDoorbell);
}

TEST(RdmaQp, ReadReturnsSnapshotAtArrivalTime)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 64);
    rdma::QueuePair qp(s, "qp0", mem, testPath());
    mem.writeU32(0, 111);

    // Local (device-side) overwrite long after the read arrives.
    s.schedule(1_ms, [&] { mem.writeU32(0, 222); });

    std::uint32_t got = 0;
    std::vector<std::uint8_t> buf(4);
    auto body = [&]() -> sim::Task {
        co_await qp.read(0, buf);
        got = static_cast<std::uint32_t>(buf[0]);
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_EQ(got, 111u);
}

TEST(RdmaQp, ReadCompletionIsRoundTrip)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 64);
    auto path = testPath();
    rdma::QueuePair qp(s, "qp0", mem, path);
    std::vector<std::uint8_t> buf(4);
    sim::Tick done = 0;
    auto body = [&]() -> sim::Task {
        co_await qp.read(0, buf);
        done = s.now();
    };
    sim::spawn(s, body());
    s.run();
    // nic 600 + ser(0)=0 + oneWay 900 (request) + ser(4B)=0.64->0 +
    // oneWay 900 (response) = 2400 ns.
    EXPECT_EQ(done, 2400_ns);
}

TEST(RdmaQp, BarrierOrdersBehindWrites)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 1 << 20);
    rdma::QueuePair qp(s, "qp0", mem, testPath());

    sim::Tick dataDelivered = 0, barrierDone = 0;
    mem.watch(0, 1, [&](auto, auto) { dataDelivered = s.now(); });
    auto body = [&]() -> sim::Task {
        qp.postWrite(0, std::vector<std::uint8_t>(512 * 1024, 1));
        co_await qp.readBarrier();
        barrierDone = s.now();
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_GT(dataDelivered, 0u);
    // Barrier reaches target only after the large write (RC order)
    // and returns one oneWay later.
    EXPECT_GE(barrierDone, dataDelivered + 900_ns);
}

TEST(RdmaQp, RemotePathAddsWireLatency)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu-remote", 64);
    auto local = testPath();
    auto remote = local.viaNetwork(4_us);
    rdma::QueuePair qp(s, "qp-remote", mem, remote);

    sim::Tick completedAt = 0;
    auto body = [&]() -> sim::Task {
        co_await qp.write(0, std::vector<std::uint8_t>(4));
        completedAt = s.now();
    };
    sim::spawn(s, body());
    s.run();
    // local write completion would be 600+0+900+900 = 2400ns;
    // remote adds 4us each way.
    EXPECT_EQ(completedAt, 2400_ns + 8_us);
}

TEST(RdmaQp, StatsCountOpsAndBytes)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 1024);
    rdma::QueuePair qp(s, "qp0", mem, testPath());
    std::vector<std::uint8_t> buf(16);
    auto body = [&]() -> sim::Task {
        co_await qp.write(0, std::vector<std::uint8_t>(32));
        qp.postWrite(32, std::vector<std::uint8_t>(8));
        co_await qp.read(0, buf);
        co_await qp.readBarrier();
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_EQ(qp.stats().counterValue("write_ops"), 2u);
    EXPECT_EQ(qp.stats().counterValue("write_bytes"), 40u);
    EXPECT_EQ(qp.stats().counterValue("read_ops"), 1u);
    EXPECT_EQ(qp.stats().counterValue("read_bytes"), 16u);
    EXPECT_EQ(qp.stats().counterValue("barrier_ops"), 1u);
}

TEST(RdmaQp, ConcurrentWritersSerializeOnOneQp)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("gpu0", 1 << 20);
    rdma::RdmaPathModel slow = testPath();
    slow.gbps = 1.0; // make serialization visible: 125KB = 1ms
    rdma::QueuePair qp(s, "qp0", mem, slow);

    std::vector<sim::Tick> completions;
    auto writer = [&](std::uint64_t off) -> sim::Task {
        co_await qp.write(off, std::vector<std::uint8_t>(125'000));
        completions.push_back(s.now());
    };
    sim::spawn(s, writer(0));
    sim::spawn(s, writer(200'000));
    s.run();
    ASSERT_EQ(completions.size(), 2u);
    // Second write's delivery starts only after the first finishes
    // serializing: roughly 1ms apart.
    EXPECT_GE(completions[1] - completions[0], 900_us);
}

/**
 * @file
 * Unit tests of the trace-category switchboard (sim/trace.hh): the
 * LYNX_TRACE comma-list parser must strip surrounding whitespace and
 * drop empty tokens, and disable("all") must actually clear the
 * all-categories flag (a regression here silently floods — or
 * silences — every trace consumer).
 */

#include <gtest/gtest.h>

#include "sim/trace.hh"

using lynx::sim::TraceControl;

namespace {

/** Every test starts and ends from the env-only state. */
struct TraceTest : ::testing::Test
{
    void SetUp() override { TraceControl::reset(); }
    void TearDown() override { TraceControl::reset(); }
};

} // namespace

TEST_F(TraceTest, ParseCategoriesSplitsOnCommas)
{
    auto cats = TraceControl::parseCategories("mqueue,rdma,lynx");
    ASSERT_EQ(cats.size(), 3u);
    EXPECT_EQ(cats[0], "mqueue");
    EXPECT_EQ(cats[1], "rdma");
    EXPECT_EQ(cats[2], "lynx");
}

TEST_F(TraceTest, ParseCategoriesTrimsSurroundingWhitespace)
{
    // The documented env syntax: "mqueue, rdma" enables both. An
    // untrimmed " rdma" would never match the "rdma" category.
    auto cats = TraceControl::parseCategories("  mqueue ,\trdma\t, all ");
    ASSERT_EQ(cats.size(), 3u);
    EXPECT_EQ(cats[0], "mqueue");
    EXPECT_EQ(cats[1], "rdma");
    EXPECT_EQ(cats[2], "all");
}

TEST_F(TraceTest, ParseCategoriesDropsEmptyAndBlankTokens)
{
    auto cats = TraceControl::parseCategories(",mqueue,, \t ,rdma,");
    ASSERT_EQ(cats.size(), 2u);
    EXPECT_EQ(cats[0], "mqueue");
    EXPECT_EQ(cats[1], "rdma");

    EXPECT_TRUE(TraceControl::parseCategories("").empty());
    EXPECT_TRUE(TraceControl::parseCategories("  , \t,  ").empty());
}

TEST_F(TraceTest, EnableDisableRoundTripsOneCategory)
{
    EXPECT_FALSE(TraceControl::enabled("mqueue"));
    TraceControl::enable("mqueue");
    EXPECT_TRUE(TraceControl::enabled("mqueue"));
    EXPECT_FALSE(TraceControl::enabled("rdma"));
    TraceControl::disable("mqueue");
    EXPECT_FALSE(TraceControl::enabled("mqueue"));
}

TEST_F(TraceTest, DisableAllClearsTheAllFlag)
{
    TraceControl::enable("all");
    EXPECT_TRUE(TraceControl::enabled("anything"));
    EXPECT_TRUE(TraceControl::enabled("mqueue"));

    TraceControl::disable("all");
    EXPECT_FALSE(TraceControl::enabled("anything"));
    EXPECT_FALSE(TraceControl::enabled("mqueue"));
}

TEST_F(TraceTest, DisableAllKeepsExplicitCategories)
{
    TraceControl::enable("mqueue");
    TraceControl::enable("all");
    TraceControl::disable("all");
    // "all" masks — it must not swallow — the explicit enables.
    EXPECT_TRUE(TraceControl::enabled("mqueue"));
    EXPECT_FALSE(TraceControl::enabled("rdma"));
}

/**
 * @file
 * Tests for the network substrate: NIC binding/demux, message flight
 * time, FIFO delivery, queue overflow, and stack cost profiles.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"
#include "net/nic.hh"
#include "net/stack.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using net::Address;
using net::Message;
using net::Protocol;

namespace {

Message
makeMsg(Address src, Address dst, std::size_t bytes,
        Protocol proto = Protocol::Udp)
{
    Message m;
    m.src = src;
    m.dst = dst;
    m.proto = proto;
    m.payload.assign(bytes, 0xab);
    return m;
}

} // namespace

TEST(Network, DeliversToBoundEndpoint)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    auto &ep = b.bind(Protocol::Udp, 7000);

    Message got;
    auto receiver = [&]() -> sim::Task { got = co_await ep.recv(); };
    auto sender = [&]() -> sim::Task {
        co_await a.send(makeMsg({a.node(), 1}, {b.node(), 7000}, 64));
    };
    sim::spawn(s, receiver());
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(got.size(), 64u);
    EXPECT_EQ(got.src.node, a.node());
    EXPECT_EQ(got.dst.port, 7000);
}

TEST(Network, FlightTimeMatchesModel)
{
    sim::Simulator s;
    net::NetworkConfig ncfg;
    ncfg.switchLatency = 600_ns;
    ncfg.propagation = 400_ns;
    net::Network nw(s, ncfg);
    net::NicConfig cfg;
    cfg.gbps = 40.0;
    cfg.hwLatency = 300_ns;
    auto &a = nw.addNic("a", cfg);
    auto &b = nw.addNic("b", cfg);
    auto &ep = b.bind(Protocol::Udp, 1);

    sim::Tick arrival = 0;
    auto receiver = [&]() -> sim::Task {
        (void)co_await ep.recv();
        arrival = s.now();
    };
    auto sender = [&]() -> sim::Task {
        co_await a.send(makeMsg({a.node(), 9}, {b.node(), 1}, 1000));
    };
    sim::spawn(s, receiver());
    sim::spawn(s, sender());
    s.run();
    // serialization(1000B @ 40G) = 200ns, + tx hw 300 + switch 600 +
    // prop 400 + rx hw 300 = 1800ns total.
    EXPECT_EQ(arrival, 1800_ns);
}

TEST(Network, PerPairFifoOrder)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    auto &ep = b.bind(Protocol::Udp, 5);

    std::vector<std::uint64_t> seqs;
    auto receiver = [&]() -> sim::Task {
        for (int i = 0; i < 20; ++i) {
            Message m = co_await ep.recv();
            seqs.push_back(m.seq);
        }
    };
    auto sender = [&]() -> sim::Task {
        for (std::uint64_t i = 0; i < 20; ++i) {
            Message m = makeMsg({a.node(), 9}, {b.node(), 5}, 64);
            m.seq = i;
            co_await a.send(std::move(m));
        }
    };
    sim::spawn(s, receiver());
    sim::spawn(s, sender());
    s.run();
    ASSERT_EQ(seqs.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(seqs[i], i);
}

TEST(Network, UnboundPortCountsAsDrop)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    auto sender = [&]() -> sim::Task {
        co_await a.send(makeMsg({a.node(), 9}, {b.node(), 404}, 64));
    };
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(b.stats().counterValue("rx_no_endpoint"), 1u);
}

TEST(Network, QueueOverflowDropsUdp)
{
    sim::Simulator s;
    net::Network nw(s);
    net::NicConfig small;
    small.queueDepth = 4;
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b", small);
    auto &ep = b.bind(Protocol::Udp, 7);

    auto sender = [&]() -> sim::Task {
        for (int i = 0; i < 10; ++i)
            co_await a.send(makeMsg({a.node(), 9}, {b.node(), 7}, 64));
    };
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(ep.backlog(), 4u);
    EXPECT_EQ(ep.dropped(), 6u);
    EXPECT_EQ(b.stats().counterValue("rx_drop_udp"), 6u);
}

TEST(Network, TxSerializationBackpressuresSender)
{
    sim::Simulator s;
    net::Network nw(s);
    net::NicConfig slow;
    slow.gbps = 1.0; // 1 Gbps: 1250 bytes take 10 us
    auto &a = nw.addNic("a", slow);
    auto &b = nw.addNic("b");
    b.bind(Protocol::Udp, 7);

    sim::Tick done = 0;
    auto sender = [&]() -> sim::Task {
        for (int i = 0; i < 5; ++i)
            co_await a.send(makeMsg({a.node(), 9}, {b.node(), 7}, 1250));
        done = s.now();
    };
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(done, 50_us);
}

TEST(Network, DuplicatePortBindPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    a.bind(Protocol::Udp, 80);
    EXPECT_DEATH(a.bind(Protocol::Udp, 80), "already bound");
    // Same port, different protocol is fine.
    a.bind(Protocol::Tcp, 80);
}

TEST(Network, SeparateProtocolNamespaces)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    auto &udp = b.bind(Protocol::Udp, 9);
    auto &tcp = b.bind(Protocol::Tcp, 9);

    auto sender = [&]() -> sim::Task {
        co_await a.send(
            makeMsg({a.node(), 1}, {b.node(), 9}, 10, Protocol::Tcp));
    };
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(udp.backlog(), 0u);
    EXPECT_EQ(tcp.backlog(), 1u);
}

TEST(StackProfile, CostSelectsByProtocolAndDirection)
{
    net::StackProfile p;
    p.udpRecv = 2_us;
    p.udpSend = 1_us;
    p.tcpRecv = 20_us;
    p.tcpSend = 15_us;
    p.perByte = 0.5;

    EXPECT_EQ(p.cost(Protocol::Udp, net::Dir::Recv, 0), 2_us);
    EXPECT_EQ(p.cost(Protocol::Udp, net::Dir::Send, 0), 1_us);
    EXPECT_EQ(p.cost(Protocol::Tcp, net::Dir::Recv, 0), 20_us);
    EXPECT_EQ(p.cost(Protocol::Tcp, net::Dir::Send, 0), 15_us);
    // 1000 bytes at 0.5 ns/B adds 500 ns.
    EXPECT_EQ(p.cost(Protocol::Udp, net::Dir::Recv, 1000), 2_us + 500_ns);
}

TEST(Network, StatsCountTraffic)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    b.bind(Protocol::Udp, 7);
    auto sender = [&]() -> sim::Task {
        for (int i = 0; i < 3; ++i)
            co_await a.send(makeMsg({a.node(), 9}, {b.node(), 7}, 100));
    };
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(a.stats().counterValue("tx_msgs"), 3u);
    EXPECT_EQ(a.stats().counterValue("tx_bytes"), 300u);
    EXPECT_EQ(b.stats().counterValue("rx_msgs"), 3u);
    EXPECT_EQ(nw.stats().counterValue("routed"), 3u);
}

TEST(Network, LossInjectionDropsDeterministically)
{
    auto run = [](double rate) {
        sim::Simulator s;
        net::NetworkConfig cfg;
        cfg.lossRate = rate;
        cfg.lossSeed = 77;
        net::Network nw(s, cfg);
        auto &a = nw.addNic("a");
        auto &b = nw.addNic("b");
        auto &ep = b.bind(Protocol::Udp, 7);
        auto sender = [&]() -> sim::Task {
            for (int i = 0; i < 1000; ++i)
                co_await a.send(makeMsg({a.node(), 9}, {b.node(), 7},
                                        64));
        };
        sim::spawn(s, sender());
        s.run();
        return std::pair<std::size_t, std::uint64_t>{
            ep.backlog(), nw.stats().counterValue("dropped_in_fabric")};
    };
    auto [delivered0, dropped0] = run(0.0);
    EXPECT_EQ(delivered0, 1000u);
    EXPECT_EQ(dropped0, 0u);

    auto [delivered, dropped] = run(0.3);
    EXPECT_EQ(delivered + dropped, 1000u);
    EXPECT_NEAR(static_cast<double>(dropped), 300.0, 60.0);

    // Determinism: same seed, same loss pattern.
    auto [d2, x2] = run(0.3);
    EXPECT_EQ(d2, delivered);
    EXPECT_EQ(x2, dropped);
}

/**
 * @file
 * Chaos tier: DCQCN congestion control composed with fault-plan
 * packet loss under N-to-1 incast. 20 seeds of sustained ECN marking
 * + random fabric/RDMA drops must never wedge the pipeline: the
 * victim keeps completing byte-validated requests (the software RDMA
 * retry budget from the failover machinery converges instead of
 * livelocking behind paced, marked, lossy traffic).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "host/node.hh"
#include "lynx/calibration.hh"
#include "lynx/gio.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "snic/bluefield.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

constexpr double kBottleneckGbps = 0.5;
constexpr std::size_t kPayloadBytes = 1024;

std::vector<std::uint8_t>
payloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(kPayloadBytes);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 193 + b * 29 + 11);
    return p;
}

net::CongestionConfig
dcqcnConfig()
{
    net::CongestionConfig cc;
    cc.enabled = true;
    cc.egressQueueBytes = 128 * 1024;
    cc.ecnKminBytes = 4 * 1024;
    cc.ecnKmaxBytes = 16 * 1024;
    cc.ecnEnabled = true;
    cc.dcqcnEnabled = true;
    cc.dcqcn.lineRateGbps = kBottleneckGbps;
    cc.dcqcn.minRateGbps = kBottleneckGbps / 50;
    cc.dcqcn.aiGbps = kBottleneckGbps / 100;
    cc.dcqcn.haiGbps = kBottleneckGbps / 20;
    cc.dcqcn.alphaTimer = 275_us;
    cc.dcqcn.rateTimer = 500_us;
    cc.pfc.enabled = true;
    return cc;
}

struct ChaosResult
{
    std::uint64_t completed = 0;
    std::uint64_t failures = 0;
    std::uint64_t ecnMarked = 0;
    std::uint64_t faultDrops = 0;
};

/** One lossy, congested incast run: a remote GPU behind a fault plan
 *  (RDMA retries live), 4 open-loop aggressors at 1.5x the ~61 Krps
 *  wire saturation, and one closed-loop byte-validating victim. */
ChaosResult
runChaos(std::uint64_t seed, double dropRate)
{
    sim::Simulator s;

    net::NetworkConfig ncfg;
    ncfg.congestion = dcqcnConfig();
    ncfg.congestion.ecnSeed = 0xecb1 + seed;
    net::Network nw(s, ncfg);

    snic::BluefieldConfig bfc;
    bfc.nic.gbps = kBottleneckGbps;
    snic::Bluefield bf(s, nw, "bf0", bfc);
    host::Node remoteHost(s, nw, "server1");
    accel::Gpu gpu(s, "gpu0", remoteHost.fabric());

    sim::FaultConfig fc;
    fc.dropRate = dropRate;
    fc.seed = seed;
    sim::FaultPlan plan(fc);
    nw.setFaultPlan(&plan);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.congestion = ncfg.congestion;
    cfg.failover.enabled = true; // installs the sw RDMA retry budget
    core::Runtime rt(s, cfg);

    rdma::RdmaPathModel lp;
    auto &accel = rt.addAccelerator(
        "gpu0", gpu.memory(),
        lp.viaNetwork(calibration::rdmaRemoteExtraOneWay));
    rdma::QpFaultBinding fb;
    fb.plan = &plan;
    fb.initiator = bf.node();
    fb.target = remoteHost.id();
    accel.qp().bindFaults(fb);

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    scfg.ringSlots = 32;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (auto &q : rt.makeAccelQueues(svc, accel)) {
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 2_us));
        queues.push_back(std::move(q));
    }
    rt.start();

    constexpr sim::Tick kWarmup = 5_ms;
    constexpr sim::Tick kWindow = 25_ms;
    constexpr double kSaturationRps = 61'000.0;

    std::vector<std::unique_ptr<workload::LoadGen>> agg;
    for (int a = 0; a < 4; ++a) {
        auto &nic = nw.addNic("agg" + std::to_string(a));
        workload::LoadGenConfig lg;
        lg.nic = &nic;
        lg.target = {bf.node(), 7000};
        lg.openRate = 1.5 * kSaturationRps / 4;
        lg.warmup = kWarmup;
        lg.duration = kWindow;
        lg.makeRequest = [](std::uint64_t, sim::Rng &) {
            return std::vector<std::uint8_t>(kPayloadBytes, 0x5a);
        };
        lg.seed = seed * 100 + static_cast<std::uint64_t>(a);
        agg.push_back(std::make_unique<workload::LoadGen>(s, lg));
    }

    auto &victimNic = nw.addNic("victim");
    workload::LoadGenConfig lg;
    lg.nic = &victimNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 4;
    lg.warmup = kWarmup;
    lg.duration = kWindow;
    lg.requestTimeout = 5_ms;
    lg.thinkTime = 1_ms;
    lg.seed = seed;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    workload::LoadGen victim(s, lg);

    for (auto &g : agg)
        g->start();
    victim.start();
    s.runUntil(victim.windowEnd() + 10_ms);

    ChaosResult out;
    out.completed = victim.completed();
    out.failures = victim.validationFailures();
    out.ecnMarked = nw.ecnStats().counterValue("marked");
    out.faultDrops = nw.stats().counterValue("dropped_by_fault");
    return out;
}

} // namespace

/** 20 seeds of loss x DCQCN x incast: every run must keep making
 *  byte-exact progress under sustained marking — no wedge, no
 *  corruption, and the chaos must actually be happening (marks and
 *  fault drops both non-zero). */
TEST(CongestionChaos, LossUnderIncastConvergesAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        // 1-5% loss: enough to fire retries constantly, not enough
        // to starve a 5 ms-timeout closed loop outright.
        double dropRate = 0.01 + 0.002 * static_cast<double>(seed);
        ChaosResult r = runChaos(seed, dropRate);
        SCOPED_TRACE("seed " + std::to_string(seed));
        // ~40 victim requests fit the window at full health; even a
        // heavily bullied victim must land a real fraction of them.
        EXPECT_GE(r.completed, 10u);
        EXPECT_EQ(r.failures, 0u);
        EXPECT_GT(r.ecnMarked, 0u);  // marking was sustained
        EXPECT_GT(r.faultDrops, 0u); // loss was live
    }
}

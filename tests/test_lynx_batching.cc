/**
 * @file
 * Tests for the batched dispatch & forwarding extension: multi-slot
 * coalesced RX writes (SnicMqueue::rxPushBatch), pipelined TX drains
 * (pollTxBatch), accelerator-side burst consumption (gio rxBurst),
 * the fallback rules (ring wrap, §5.1 write barrier, split writes),
 * and — most importantly — that every batching knob at its default
 * reproduces the unbatched seed behaviour exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "host/node.hh"
#include "lynx/gio.hh"
#include "lynx/mqueue.hh"
#include "lynx/runtime.hh"
#include "lynx/snic_mqueue.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/processor.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "snic/bluefield.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using lynx::core::AccelQueue;
using lynx::core::GioConfig;
using lynx::core::MqueueKind;
using lynx::core::MqueueLayout;
using lynx::core::SnicMqueue;
using lynx::core::SnicMqueueConfig;

namespace {

struct Rig
{
    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};
    MqueueLayout layout{0, 8, 256};
};

std::vector<std::uint8_t>
randomPayload(sim::Rng &rng, std::size_t maxLen)
{
    std::vector<std::uint8_t> p(1 + rng.below(maxLen));
    for (auto &b : p)
        b = static_cast<std::uint8_t>(rng.below(256));
    return p;
}

/** Push all of @p msgs through rxPushBatch in random-size groups,
 *  retrying whenever the ring fills. */
sim::Task
pushAll(Rig &r, SnicMqueue &mq, const std::vector<std::vector<std::uint8_t>> &msgs,
        std::uint64_t seed, int maxGroup)
{
    sim::Rng rng(seed);
    std::size_t next = 0;
    while (next < msgs.size()) {
        std::size_t n = std::min<std::size_t>(
            1 + rng.below(static_cast<std::uint64_t>(maxGroup)),
            msgs.size() - next);
        std::vector<SnicMqueue::RxItem> items;
        for (std::size_t j = 0; j < n; ++j) {
            items.push_back({msgs[next + j],
                             static_cast<std::uint32_t>(next + j), 0});
        }
        std::size_t accepted = co_await mq.rxPushBatch(r.core, items);
        next += accepted;
        if (accepted < n)
            co_await sim::sleep(2_us);
    }
}

/** Consume @p count messages via gio, recording payloads and tags. */
sim::Task
recvAll(AccelQueue &gio, std::size_t count,
        std::vector<std::vector<std::uint8_t>> &payloads,
        std::vector<std::uint32_t> &tags)
{
    for (std::size_t i = 0; i < count; ++i) {
        core::GioMessage m = co_await gio.recv();
        payloads.push_back(std::move(m.payload));
        tags.push_back(m.tag);
    }
}

} // namespace

/**
 * Property/torture test: random payloads pushed in random batch
 * sizes over a tiny 8-slot ring (so segments constantly hit the
 * wrap-split path and flow control), consumed in burst mode. Every
 * byte must come out intact and every tag in order, while the write
 * count proves multi-slot coalescing actually happened.
 */
TEST(Batching, RxPushBatchFidelityAcrossWrapAndFlowControl)
{
    for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
        Rig r;
        SnicMqueueConfig cfg;
        cfg.maxBatch = 5; // does not divide 8: exercises wrap splits
        SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server,
                      cfg);
        GioConfig gcfg;
        gcfg.rxBurst = true;
        AccelQueue gio(r.s, "gio", r.mem, r.layout, gcfg);

        sim::Rng rng(seed * 77);
        std::vector<std::vector<std::uint8_t>> msgs;
        for (int i = 0; i < 101; ++i)
            msgs.push_back(randomPayload(rng, r.layout.maxPayload()));

        std::vector<std::vector<std::uint8_t>> got;
        std::vector<std::uint32_t> gotTags;
        sim::spawn(r.s, pushAll(r, mq, msgs, seed, cfg.maxBatch));
        sim::spawn(r.s, recvAll(gio, msgs.size(), got, gotTags));
        r.s.run();

        ASSERT_EQ(got.size(), msgs.size()) << "seed " << seed;
        for (std::size_t i = 0; i < msgs.size(); ++i) {
            EXPECT_EQ(got[i], msgs[i]) << "message " << i;
            EXPECT_EQ(gotTags[i], i) << "message " << i;
        }
        // Multi-slot segments actually formed...
        EXPECT_LT(mq.stats().counterValue("rx_write_ops"), msgs.size());
        EXPECT_GT(mq.stats().counterValue("rx_coalesced"), 0u);
        EXPECT_EQ(mq.stats().counterValue("rx_pushed"), msgs.size());
        // ...and the accelerator swept some of them in one poll.
        EXPECT_GT(gio.stats().counterValue("rx_bursts"), 0u);
    }
}

/** The §5.1 write-barrier mode cannot coalesce across slots: the
 *  batch call must degrade to the 3-op per-message sequence with
 *  nothing lost. */
TEST(Batching, WriteBarrierModeFallsBackToPerMessagePushes)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.maxBatch = 4;
    cfg.writeBarrier = true;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);

    sim::Rng rng(5);
    std::vector<std::vector<std::uint8_t>> msgs;
    for (int i = 0; i < 6; ++i)
        msgs.push_back(randomPayload(rng, r.layout.maxPayload()));

    std::vector<std::vector<std::uint8_t>> got;
    std::vector<std::uint32_t> gotTags;
    sim::spawn(r.s, pushAll(r, mq, msgs, 9, cfg.maxBatch));
    sim::spawn(r.s, recvAll(gio, msgs.size(), got, gotTags));
    r.s.run();

    ASSERT_EQ(got.size(), msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i)
        EXPECT_EQ(got[i], msgs[i]) << "message " << i;
    // 3 QP ops per message (data write, read barrier, doorbell).
    EXPECT_EQ(mq.stats().counterValue("rx_write_ops"), 3 * msgs.size());
    EXPECT_EQ(mq.stats().counterValue("rx_coalesced"), 0u);
    EXPECT_EQ(mq.stats().counterValue("rx_pushed"), msgs.size());
}

/** maxBatch = 1 must be indistinguishable from the seed's sequential
 *  rxPush loop — same bytes, same simulated completion time. */
TEST(Batching, MaxBatchOneMatchesSequentialPushTiming)
{
    auto runOnce = [](bool viaBatchCall) {
        Rig r;
        SnicMqueueConfig cfg; // maxBatch = 1
        auto mq = std::make_unique<SnicMqueue>(r.s, "mq", r.qp, r.layout,
                                               MqueueKind::Server, cfg);
        auto gio = std::make_unique<AccelQueue>(r.s, "gio", r.mem,
                                                r.layout);
        sim::Rng rng(3);
        std::vector<std::vector<std::uint8_t>> msgs;
        for (int i = 0; i < 40; ++i)
            msgs.push_back(randomPayload(rng, r.layout.maxPayload()));

        std::vector<std::vector<std::uint8_t>> got;
        std::vector<std::uint32_t> gotTags;
        auto pushSequential = [&]() -> sim::Task {
            for (std::size_t i = 0; i < msgs.size(); ++i) {
                while (!co_await mq->rxPush(
                    r.core, msgs[i], static_cast<std::uint32_t>(i)))
                    co_await sim::sleep(2_us);
            }
        };
        if (viaBatchCall)
            sim::spawn(r.s, pushAll(r, *mq, msgs, 9, 5));
        else
            sim::spawn(r.s, pushSequential());
        sim::spawn(r.s, recvAll(*gio, msgs.size(), got, gotTags));
        r.s.run();
        EXPECT_EQ(got.size(), msgs.size());
        EXPECT_EQ(got, msgs);
        return r.s.now();
    };
    EXPECT_EQ(runOnce(true), runOnce(false));
}

/** pollTxBatch must return every ready slot, in order and intact,
 *  for ONE fetch op — where per-slot pollTx would have paid one per
 *  message. */
TEST(Batching, PollTxBatchDrainsReadySlotsInOneFetch)
{
    Rig r;
    SnicMqueueConfig cfg;
    cfg.maxBatch = 8;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, cfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);

    sim::Rng rng(7);
    std::vector<std::vector<std::uint8_t>> msgs;
    for (int i = 0; i < 5; ++i)
        msgs.push_back(randomPayload(rng, r.layout.maxPayload()));

    auto accelSend = [&]() -> sim::Task {
        for (std::size_t i = 0; i < msgs.size(); ++i)
            co_await gio.send(static_cast<std::uint32_t>(i), msgs[i]);
    };
    std::vector<core::TxMessage> popped;
    auto snicDrain = [&]() -> sim::Task {
        co_await sim::sleep(50_us); // let every doorbell land first
        auto batch = co_await mq.pollTxBatch(r.core, 8);
        for (auto &m : batch)
            popped.push_back(std::move(m));
        co_await mq.commitTxCons(r.core);
    };
    sim::spawn(r.s, accelSend());
    sim::spawn(r.s, snicDrain());
    r.s.run();

    ASSERT_EQ(popped.size(), msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(popped[i].payload, msgs[i]) << "message " << i;
        EXPECT_EQ(popped[i].tag, i);
    }
    EXPECT_EQ(mq.stats().counterValue("tx_fetch_ops"), 1u);
    EXPECT_EQ(mq.stats().counterValue("tx_popped"), msgs.size());
    EXPECT_EQ(mq.stats().counterValue("tx_cons_commits"), 1u);
}

/**
 * Golden seed-equivalence test: with every batching knob at its
 * default, five sequential 64 B echoes through the full Lynx-on-host
 * runtime complete at exactly the simulated timestamps the unbatched
 * seed produced. Any timing drift in the default paths — however
 * small — fails this test.
 */
TEST(Batching, DefaultsReproduceSeedEchoTimestampsExactly)
{
    sim::Simulator s;
    net::Network network(s);
    net::Nic &client = network.addNic("client");
    host::Node server(s, network, "server");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);

    std::vector<sim::Core *> cores{&server.cores()[0]};
    core::RuntimeConfig cfg = snic::hostRuntimeConfig(cores, server.nic());
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("gpu", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 1;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 0));
    rt.start();

    net::Endpoint &ep = client.bind(net::Protocol::Udp, 30000);
    std::vector<sim::Tick> stamps;
    auto clientTask = [&]() -> sim::Task {
        for (int i = 0; i < 5; ++i) {
            net::Message m;
            m.src = {client.node(), 30000};
            m.dst = {server.id(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload.assign(64, static_cast<std::uint8_t>(i));
            co_await client.send(std::move(m));
            net::Message r = co_await ep.recv();
            EXPECT_EQ(r.payload.size(), 64u);
            stamps.push_back(s.now());
        }
    };
    sim::spawn(s, clientTask());
    s.runUntil(10_ms);

    const std::vector<sim::Tick> seedStamps{11763, 23526, 35289, 47052,
                                            58815};
    EXPECT_EQ(stamps, seedStamps);
}

/**
 * End-to-end correctness with every batching knob ON: concurrent
 * clients hammer a batched Lynx-on-Bluefield echo service; every
 * response must echo its request byte-for-byte and arrive in per-
 * client order, and the counters must show genuine multi-slot
 * coalescing, pipelined TX drains and accelerator-side bursts.
 */
TEST(Batching, BatchedRuntimeEchoesConcurrentClientsFaithfully)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.mq.maxBatch = 8;
    cfg.dispatchMaxBatch = 8;
    cfg.dispatchFlushLinger = 30_us;
    cfg.forwarder.maxBatch = 8;
    cfg.forwarder.adaptivePoll = true;
    cfg.gio.rxBurst = true;
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 1;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 0));
    rt.start();

    constexpr int kClients = 12;
    constexpr int kPerClient = 25;
    int done = 0;
    auto clientTask = [&](int c) -> sim::Task {
        std::uint16_t port = static_cast<std::uint16_t>(40000 + c);
        net::Endpoint &ep = clientNic.bind(net::Protocol::Udp, port);
        for (int i = 0; i < kPerClient; ++i) {
            std::vector<std::uint8_t> payload(64);
            for (std::size_t b = 0; b < payload.size(); ++b)
                payload[b] = static_cast<std::uint8_t>(c * 31 + i + b);
            net::Message m;
            m.src = {clientNic.node(), port};
            m.dst = {bf.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = payload;
            co_await clientNic.send(std::move(m));
            net::Message r = co_await ep.recv();
            // Byte fidelity and per-client (tag) order: the echoed
            // payload is exactly the i-th request's.
            EXPECT_EQ(r.payload, payload)
                << "client " << c << " message " << i;
            ++done;
        }
    };
    for (int c = 0; c < kClients; ++c)
        sim::spawn(s, clientTask(c));
    s.runUntil(500_ms);

    EXPECT_EQ(done, kClients * kPerClient);
    std::uint64_t coalesced = 0, fetched = 0, popped = 0;
    for (const auto &mq : rt.mqueues()) {
        coalesced += mq->stats().counterValue("rx_coalesced");
        fetched += mq->stats().counterValue("tx_fetch_ops");
        popped += mq->stats().counterValue("tx_popped");
    }
    EXPECT_GT(coalesced, 0u);
    EXPECT_LT(fetched, popped); // pipelined drains actually batched
}

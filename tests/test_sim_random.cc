/**
 * @file
 * Tests for the deterministic RNG: reproducibility, range containment,
 * and rough distribution shape.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

using namespace lynx::sim;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.between(3, 8);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 8u);
        sawLo |= (v == 3);
        sawHi |= (v == 8);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(55);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(1234);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(777);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.2);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(RngDeath, BelowZeroRangePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "empty range");
}

/**
 * @file
 * Calibration sanity: the constants in lynx/calibration.hh must stay
 * consistent with the paper measurements they are anchored to. These
 * tests fail loudly if someone retunes one constant and silently
 * breaks a paper anchor elsewhere.
 */

#include <gtest/gtest.h>

#include "accel/gpu.hh"
#include "lynx/calibration.hh"

using namespace lynx;
using namespace lynx::calibration;
using namespace lynx::sim::literals;

TEST(Calibration, LenetKernelsSumToTheGpuCeiling)
{
    // §6.3: single-GPU theoretical max 3.6 Kreq/s => ~278 us total.
    double totalUs = sim::toMicroseconds(lenetTotal());
    EXPECT_NEAR(totalUs, 278.0, 10.0);
    double ceiling = 1e6 / totalUs;
    EXPECT_GT(ceiling, 3500.0);
    EXPECT_LT(ceiling, 3750.0);
}

TEST(Calibration, K80ClockScaleMatchesPaperRatio)
{
    // §6.3 footnote: K80 peaks at 3300 req/s where K40m does 3500;
    // the end-to-end validation is Fig. 8b (3310 req/s per K80).
    EXPECT_NEAR(k80ClockScale, 3500.0 / 3300.0, 0.01);
}

TEST(Calibration, VmaIsCheaperThanKernelStacks)
{
    // §5.1.1: 4x UDP reduction on Bluefield, 2x on the host.
    auto vx = vmaXeon(), kx = kernelXeon();
    auto vb = vmaBluefield(), kb = kernelBluefield();
    double hostRatio =
        static_cast<double>(kx.udpRecv + kx.udpSend) /
        static_cast<double>(vx.udpRecv + vx.udpSend);
    double bfRatio =
        static_cast<double>(kb.udpRecv + kb.udpSend) /
        static_cast<double>(vb.udpRecv + vb.udpSend);
    EXPECT_NEAR(hostRatio, 2.0, 0.3);
    EXPECT_NEAR(bfRatio, 4.0, 0.5);
}

TEST(Calibration, ArmStackCostsExceedXeonEverywhere)
{
    auto x = vmaXeon(), b = vmaBluefield();
    EXPECT_GT(b.udpRecv, x.udpRecv);
    EXPECT_GT(b.udpSend, x.udpSend);
    EXPECT_GT(b.tcpRecv, x.tcpRecv);
    EXPECT_GT(b.tcpSend, x.tcpSend);
    EXPECT_GT(b.perByte, x.perByte);
    EXPECT_GT(dispatchCpuArm, dispatchCpuXeon);
    EXPECT_GT(forwardCpuArm, forwardCpuXeon);
}

TEST(Calibration, Fig8cXeonUdpAnchor)
{
    // One Xeon core saturates around 74 LeNet GPUs (259 Kreq/s of
    // 784 B requests): per-request CPU must be ~3.5-5 us.
    auto p = vmaXeon();
    double perReq =
        sim::toMicroseconds(p.cost(net::Protocol::Udp, net::Dir::Recv,
                                   784) +
                            p.cost(net::Protocol::Udp, net::Dir::Send,
                                   1) +
                            dispatchCpuXeon + forwardCpuXeon +
                            3 * rdmaPostCost);
    EXPECT_GT(perReq, 3.0);
    EXPECT_LT(perReq, 5.5);
}

TEST(Calibration, Fig8cBluefieldUdpAnchor)
{
    // Bluefield (7 ARM cores) saturates around 102 GPUs (~357 K):
    // per-request ARM CPU ~18-22 us.
    auto p = vmaBluefield();
    double perReq =
        sim::toMicroseconds(p.cost(net::Protocol::Udp, net::Dir::Recv,
                                   784) +
                            p.cost(net::Protocol::Udp, net::Dir::Send,
                                   1) +
                            dispatchCpuArm + forwardCpuArm +
                            3 * rdmaPostCost);
    EXPECT_GT(perReq, 17.0);
    EXPECT_LT(perReq, 23.0);
    double gpus = 7.0 * 1e6 / perReq / 3500.0;
    EXPECT_NEAR(gpus, 102.0, 15.0);
}

TEST(Calibration, Fig8cTcpAnchors)
{
    // TCP: ~7 GPUs on a Xeon core, ~15 on Bluefield.
    auto x = vmaXeon();
    double xeonPerReq = sim::toMicroseconds(
        x.cost(net::Protocol::Tcp, net::Dir::Recv, 784) +
        x.cost(net::Protocol::Tcp, net::Dir::Send, 1));
    EXPECT_NEAR(1e6 / xeonPerReq / 3500.0, 7.0, 1.5);

    auto b = vmaBluefield();
    double bfPerReq = sim::toMicroseconds(
        b.cost(net::Protocol::Tcp, net::Dir::Recv, 784) +
        b.cost(net::Protocol::Tcp, net::Dir::Send, 1));
    EXPECT_NEAR(7.0 * 1e6 / bfPerReq / 3500.0, 15.0, 2.5);
}

TEST(Calibration, RdmaPostIsSubMicrosecond)
{
    // §5.1: "IB RDMA requires less than 1 usec to invoke by the CPU".
    EXPECT_LT(rdmaPostCost, 1_us);
    EXPECT_GT(rdmaPostCost, 0u);
}

TEST(Calibration, RemotePathAddsEightMicrosecondsRoundTrip)
{
    // §6.3: "Using remote GPUs adds about 8 usec".
    EXPECT_EQ(2 * rdmaRemoteExtraOneWay, 8_us);
}

TEST(Calibration, InnovaAfuRateIsPaperRate)
{
    double rate = 1e9 / static_cast<double>(innovaAfuPerMessage);
    EXPECT_NEAR(rate / 1e6, 7.4, 0.2);
}

TEST(Calibration, MemcachedAnchors)
{
    // Fig. 9: 250 Ktps/Xeon core, 400 Ktps whole Bluefield.
    auto x = vmaXeon();
    double xeonPerOp = sim::toMicroseconds(
        memcachedOpCostXeon +
        x.cost(net::Protocol::Udp, net::Dir::Recv, 11) +
        x.cost(net::Protocol::Udp, net::Dir::Send, 6));
    EXPECT_NEAR(1e6 / xeonPerOp, 250'000.0, 40'000.0);

    auto b = vmaBluefield();
    double armPerOp = sim::toMicroseconds(
        memcachedOpCostArm +
        b.cost(net::Protocol::Udp, net::Dir::Recv, 11) +
        b.cost(net::Protocol::Udp, net::Dir::Send, 6));
    EXPECT_NEAR(7.0 * 1e6 / armPerOp, 400'000.0, 50'000.0);
}

TEST(Calibration, DriverPipelineOverheadIsThirtyMicroseconds)
{
    // §3.2: H2D + launch + D2H + sync adds ~30 us to a request. The
    // static sum overstates the pipeline (submissions overlap with
    // device residuals); the exact 29.8 us is asserted end-to-end in
    // Stream.EchoPipelineMatchesPaperOverhead.
    accel::GpuDriverConfig d;
    double staticSumUs = sim::toMicroseconds(
        3 * d.submitCost + d.syncCost + 2 * d.memcpyResidual +
        d.launchResidual);
    EXPECT_GT(staticSumUs, 25.0);
    EXPECT_LT(staticSumUs, 40.0);
}

TEST(Calibration, BackendTcpIsLighterThanServerTcpOnXeon)
{
    // Persistent backend connections (client mqueues, §4.3) are far
    // cheaper than terminating client TCP on Xeon; on the Bluefield
    // the ARM cores keep most of the cost (§6.4).
    auto sx = vmaXeon(), bx = backendTcpXeon();
    EXPECT_LT(bx.tcpRecv * 3, sx.tcpRecv);
    auto sb = vmaBluefield(), bb = backendTcpBluefield();
    EXPECT_LT(bb.tcpRecv, sb.tcpRecv);
    EXPECT_GT(bb.tcpRecv * 2, sb.tcpRecv);
}

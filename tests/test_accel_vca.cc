/**
 * @file
 * Tests for the Intel VCA model and SGX enclave wrapper, including
 * the end-to-end Lynx-on-VCA integration (paper §5.4: the 4-line
 * integration and the host-memory mqueue workaround).
 */

#include <gtest/gtest.h>

#include "accel/vca.hh"
#include "apps/aes.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

TEST(Vca, HasThreeIndependentProcessors)
{
    sim::Simulator s;
    accel::Vca vca(s, "vca0");
    EXPECT_EQ(vca.processorCount(), 3u);
    EXPECT_EQ(vca.processor(0).name(), "vca0.e3-0");
    EXPECT_EQ(vca.processor(2).name(), "vca0.e3-2");
    EXPECT_DOUBLE_EQ(vca.processor(1).speedFactor(),
                     vca.config().coreSlowdown);
    EXPECT_EQ(vca.hostWindow().size(), vca.config().windowBytes);
}

TEST(Vca, ProcessorsRunConcurrently)
{
    sim::Simulator s;
    accel::Vca vca(s, "vca0");
    int done = 0;
    auto worker = [&](sim::Core &c) -> sim::Task {
        co_await c.exec(100_us);
        ++done;
    };
    for (std::size_t i = 0; i < 3; ++i)
        sim::spawn(s, worker(vca.processor(i)));
    s.run();
    EXPECT_EQ(done, 3);
    // Independent machines: no serialization across processors.
    EXPECT_EQ(s.now(), static_cast<sim::Tick>(
                           100_us * vca.config().coreSlowdown));
}

TEST(SgxEnclave, ChargesTransitionAndComputesForReal)
{
    sim::Simulator s;
    accel::VcaConfig cfg;
    cfg.coreSlowdown = 1.0; // exact-time assertion below
    cfg.sgxTransitionCost = 4_us;
    accel::Vca vca(s, "vca0", cfg);
    accel::SgxEnclave enclave(
        vca, 2_us, [](std::span<const std::uint8_t> in) {
            std::vector<std::uint8_t> out(in.begin(), in.end());
            for (auto &b : out)
                b = static_cast<std::uint8_t>(b ^ 0xff);
            return out;
        });

    std::vector<std::uint8_t> got;
    sim::Tick took = 0;
    auto body = [&]() -> sim::Task {
        std::vector<std::uint8_t> in{0x0f, 0xf0};
        sim::Tick t0 = s.now();
        got = co_await enclave.call(vca.processor(0), in);
        took = s.now() - t0;
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_EQ(got, (std::vector<std::uint8_t>{0xf0, 0x0f}));
    EXPECT_EQ(took, 6_us); // transition 4 + compute 2
}

TEST(SgxEnclave, AesServerRoundTripsThroughLynx)
{
    // The §6.2 secure server end-to-end: the client's AES-encrypted
    // value comes back encrypted and decrypts to 3x the original.
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    accel::Vca vca(s, "vca0");
    const apps::Aes128::Key key = {9, 9, 9, 9, 9, 9, 9, 9,
                                   9, 9, 9, 9, 9, 9, 9, 9};
    apps::Aes128 aes(key);
    accel::SgxEnclave enclave(
        vca, 2_us, [&aes](std::span<const std::uint8_t> in) {
            apps::Aes128::Block blk{};
            std::copy(in.begin(), in.end(), blk.begin());
            auto plain = aes.decrypt(blk);
            std::uint32_t v = plain[0] |
                              (static_cast<std::uint32_t>(plain[1])
                               << 8);
            v *= 3;
            apps::Aes128::Block out{};
            out[0] = static_cast<std::uint8_t>(v);
            out[1] = static_cast<std::uint8_t>(v >> 8);
            out[2] = static_cast<std::uint8_t>(v >> 16);
            auto enc = aes.encrypt(out);
            return std::vector<std::uint8_t>(enc.begin(), enc.end());
        });

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.gio.localLatency = vca.config().queueAccessLatency;
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("vca0", vca.hostWindow(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7200;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    auto worker = [&]() -> sim::Task {
        for (;;) {
            core::GioMessage m = co_await queues[0]->recv();
            auto resp = co_await enclave.call(vca.processor(0),
                                              m.payload);
            co_await queues[0]->send(m.tag, resp);
        }
    };
    sim::spawn(s, worker());
    rt.start();

    auto &ep = clientNic.bind(net::Protocol::Udp, 40000);
    std::uint32_t decrypted = 0;
    auto client = [&]() -> sim::Task {
        apps::Aes128::Block plain{};
        plain[0] = 21; // expect 63 back
        auto enc = aes.encrypt(plain);
        net::Message m;
        m.src = {clientNic.node(), 40000};
        m.dst = {bf.node(), 7200};
        m.proto = net::Protocol::Udp;
        m.payload.assign(enc.begin(), enc.end());
        co_await clientNic.send(std::move(m));
        net::Message r = co_await ep.recv();
        apps::Aes128::Block blk{};
        std::copy(r.payload.begin(), r.payload.end(), blk.begin());
        auto dec = aes.decrypt(blk);
        decrypted = dec[0] | (static_cast<std::uint32_t>(dec[1]) << 8);
    };
    sim::spawn(s, client());
    s.run();
    EXPECT_EQ(decrypted, 63u);
}

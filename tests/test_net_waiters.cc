/**
 * @file
 * Tests for the endpoint arrival-waiter machinery (the event-driven
 * receive-with-timeout used by load generators and the backend
 * listener): no double resume, exact timeout behaviour, fairness.
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

struct Rig
{
    sim::Simulator s;
    net::Network nw{s};
    net::Nic &a = nw.addNic("a");
    net::Nic &b = nw.addNic("b");
    net::Endpoint &ep = b.bind(net::Protocol::Udp, 7);

    sim::Task
    sendAt(sim::Tick when, int marker)
    {
        co_await sim::sleep(when);
        net::Message m;
        m.src = {a.node(), 1};
        m.dst = {b.node(), 7};
        m.proto = net::Protocol::Udp;
        m.payload = {static_cast<std::uint8_t>(marker)};
        co_await a.send(std::move(m));
    }
};

} // namespace

TEST(RecvTimeout, ReturnsMessageBeforeDeadline)
{
    Rig r;
    sim::spawn(r.s, r.sendAt(50_us, 9));
    std::optional<net::Message> got;
    sim::Tick when = 0;
    auto rx = [&]() -> sim::Task {
        got = co_await workload::recvTimeout(r.s, r.ep, 1_ms);
        when = r.s.now();
    };
    sim::spawn(r.s, rx());
    r.s.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload[0], 9);
    // Event-driven: resumes right at arrival, not at a poll boundary.
    EXPECT_LT(when, 60_us);
}

TEST(RecvTimeout, TimesOutExactly)
{
    Rig r;
    std::optional<net::Message> got;
    sim::Tick when = 0;
    auto rx = [&]() -> sim::Task {
        got = co_await workload::recvTimeout(r.s, r.ep, 250_us);
        when = r.s.now();
    };
    sim::spawn(r.s, rx());
    r.s.run();
    EXPECT_FALSE(got.has_value());
    EXPECT_EQ(when, 250_us);
}

TEST(RecvTimeout, LateMessageAfterTimeoutStaysQueued)
{
    Rig r;
    sim::spawn(r.s, r.sendAt(400_us, 5));
    std::optional<net::Message> first, second;
    auto rx = [&]() -> sim::Task {
        first = co_await workload::recvTimeout(r.s, r.ep, 100_us);
        second = co_await workload::recvTimeout(r.s, r.ep, 1_ms);
    };
    sim::spawn(r.s, rx());
    r.s.run();
    EXPECT_FALSE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->payload[0], 5);
}

TEST(RecvTimeout, StaleTimerAfterArrivalDoesNotDoubleResume)
{
    // Arrival at 10us, timeout armed for 100us: the late timer event
    // must find the waiter already fired and do nothing.
    Rig r;
    sim::spawn(r.s, r.sendAt(10_us, 1));
    int resumes = 0;
    auto rx = [&]() -> sim::Task {
        auto m = co_await workload::recvTimeout(r.s, r.ep, 100_us);
        ++resumes;
        EXPECT_TRUE(m.has_value());
        // Park past the stale timer's firing point.
        co_await sim::sleep(500_us);
    };
    sim::spawn(r.s, rx());
    r.s.run();
    EXPECT_EQ(resumes, 1);
}

TEST(RecvTimeout, CompetingReceiversEachGetOneMessage)
{
    Rig r;
    sim::spawn(r.s, r.sendAt(10_us, 1));
    sim::spawn(r.s, r.sendAt(20_us, 2));
    int got = 0, timeouts = 0;
    auto rx = [&]() -> sim::Task {
        auto m = co_await workload::recvTimeout(r.s, r.ep, 1_ms);
        (m ? got : timeouts)++;
    };
    sim::spawn(r.s, rx());
    sim::spawn(r.s, rx());
    r.s.run();
    EXPECT_EQ(got, 2);
    EXPECT_EQ(timeouts, 0);
}

TEST(RecvTimeout, ImmediateWhenMessageAlreadyQueued)
{
    Rig r;
    sim::spawn(r.s, r.sendAt(0, 7));
    r.s.run(); // message is now sitting in the endpoint queue
    std::optional<net::Message> got;
    sim::Tick when = sim::maxTick;
    auto rx = [&]() -> sim::Task {
        sim::Tick t0 = r.s.now();
        got = co_await workload::recvTimeout(r.s, r.ep, 1_ms);
        when = r.s.now() - t0;
    };
    sim::spawn(r.s, rx());
    r.s.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(when, 0u);
}

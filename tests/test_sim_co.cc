/**
 * @file
 * Tests for Co<T> lazy coroutines and the Core processor resource.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx::sim;
using namespace lynx::sim::literals;

namespace {

Co<int>
addAfter(Tick d, int a, int b)
{
    co_await sleep(d);
    co_return a + b;
}

Co<int>
nested(Tick d)
{
    int x = co_await addAfter(d, 1, 2);
    int y = co_await addAfter(d, x, 10);
    co_return y;
}

} // namespace

TEST(Co, ReturnsValueAfterDelay)
{
    Simulator sim;
    int got = 0;
    auto body = [&]() -> Task { got = co_await addAfter(7_us, 2, 3); };
    spawn(sim, body());
    sim.run();
    EXPECT_EQ(got, 5);
    EXPECT_EQ(sim.now(), 7_us);
}

TEST(Co, NestedCompositionAccumulatesTimeAndValues)
{
    Simulator sim;
    int got = 0;
    auto body = [&]() -> Task { got = co_await nested(5_us); };
    spawn(sim, body());
    sim.run();
    EXPECT_EQ(got, 13);
    EXPECT_EQ(sim.now(), 10_us);
}

TEST(Co, VoidCoRuns)
{
    Simulator sim;
    int side = 0;
    auto voidCo = [&](Tick d) -> Co<void> {
        co_await sleep(d);
        side = 42;
    };
    auto body = [&]() -> Task { co_await voidCo(3_us); };
    spawn(sim, body());
    sim.run();
    EXPECT_EQ(side, 42);
}

TEST(Co, MovableValues)
{
    Simulator sim;
    std::string got;
    auto makeString = []() -> Co<std::string> {
        co_await sleep(1_us);
        co_return std::string("hello");
    };
    auto body = [&]() -> Task { got = co_await makeString(); };
    spawn(sim, body());
    sim.run();
    EXPECT_EQ(got, "hello");
}

TEST(Co, TeardownDestroysSuspendedChildChain)
{
    bool inner = false, outer = false;
    struct Flag
    {
        bool *f;
        ~Flag() { *f = true; }
    };
    {
        Simulator sim;
        Channel<int> never(sim);
        auto child = [&]() -> Co<void> {
            Flag f{&inner};
            co_await never.pop();
        };
        auto body = [&]() -> Task {
            Flag f{&outer};
            co_await child();
        };
        spawn(sim, body());
        sim.run();
        EXPECT_FALSE(inner);
    }
    EXPECT_TRUE(inner);
    EXPECT_TRUE(outer);
}

TEST(Core, SerializesWork)
{
    Simulator sim;
    Core core(sim, "xeon.0");
    std::vector<Tick> completions;
    auto user = [&]() -> Task {
        co_await core.exec(10_us);
        completions.push_back(sim.now());
    };
    spawn(sim, user());
    spawn(sim, user());
    spawn(sim, user());
    sim.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0], 10_us);
    EXPECT_EQ(completions[1], 20_us);
    EXPECT_EQ(completions[2], 30_us);
    EXPECT_EQ(core.busyTime(), 30_us);
}

TEST(Core, SpeedFactorScalesCost)
{
    Simulator sim;
    Core arm(sim, "arm.0", 5.0);
    Tick done = 0;
    auto user = [&]() -> Task {
        co_await arm.exec(10_us);
        done = sim.now();
    };
    spawn(sim, user());
    sim.run();
    EXPECT_EQ(done, 50_us);
}

TEST(Core, ContentionSlowsExecution)
{
    Simulator sim;
    Core core(sim, "xeon.0");
    core.setContention(2.0);
    Tick done = 0;
    auto user = [&]() -> Task {
        co_await core.exec(10_us);
        done = sim.now();
    };
    spawn(sim, user());
    sim.run();
    EXPECT_EQ(done, 20_us);
    core.setContention(1.0);
    EXPECT_EQ(core.scaledCost(10_us), 10_us);
}

TEST(Core, UtilizationTracksBusyFraction)
{
    Simulator sim;
    Core core(sim, "xeon.0");
    auto user = [&]() -> Task { co_await core.exec(25_us); };
    spawn(sim, user());
    sim.runUntil(100_us);
    EXPECT_DOUBLE_EQ(core.utilization(100_us), 0.25);
}

TEST(Core, ExecThenRunsHookBeforeRelease)
{
    Simulator sim;
    Core core(sim, "xeon.0");
    std::vector<int> order;
    auto a = [&]() -> Task {
        co_await core.execThen(10_us, [&] { order.push_back(1); });
    };
    auto b = [&]() -> Task {
        co_await core.exec(1_us);
        order.push_back(2);
    };
    spawn(sim, a());
    spawn(sim, b());
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CorePool, CreatesNamedCores)
{
    Simulator sim;
    CorePool pool(sim, "bf.arm", 7, 5.0);
    EXPECT_EQ(pool.size(), 7u);
    EXPECT_EQ(pool[0].name(), "bf.arm.0");
    EXPECT_EQ(pool[6].name(), "bf.arm.6");
    EXPECT_DOUBLE_EQ(pool[3].speedFactor(), 5.0);
}

TEST(CorePool, CoresRunIndependently)
{
    Simulator sim;
    CorePool pool(sim, "c", 2);
    std::vector<Tick> completions;
    auto user = [&](Core &core) -> Task {
        co_await core.exec(10_us);
        completions.push_back(sim.now());
    };
    spawn(sim, user(pool[0]));
    spawn(sim, user(pool[1]));
    sim.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0], 10_us);
    EXPECT_EQ(completions[1], 10_us); // parallel, not serialized
}

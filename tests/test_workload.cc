/**
 * @file
 * Tests for the load generator (closed/open loop, window accounting,
 * timeouts) and the synthetic dataset generators.
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/datagen.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

/** A fixed-service-time echo server for exercising the generator. */
struct EchoService
{
    sim::Simulator &s;
    net::Nic &nic;
    sim::Tick serviceTime;
    bool dropEverything = false;

    void
    start(std::uint16_t port)
    {
        net::Endpoint &ep = nic.bind(net::Protocol::Udp, port);
        sim::spawn(s, loop(ep, port));
    }

    sim::Task
    loop(net::Endpoint &ep, std::uint16_t port)
    {
        for (;;) {
            net::Message m = co_await ep.recv();
            if (dropEverything)
                continue;
            co_await sim::sleep(serviceTime);
            net::Message r;
            r.src = {nic.node(), port};
            r.dst = m.src;
            r.proto = m.proto;
            r.payload = m.payload;
            r.seq = m.seq;
            r.sentAt = m.sentAt;
            co_await nic.send(std::move(r));
        }
    }
};

} // namespace

TEST(LoadGen, ClosedLoopLatencyMatchesServiceTime)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");
    EchoService svc{s, serverNic, 100_us};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.concurrency = 1;
    cfg.warmup = 2_ms;
    cfg.duration = 50_ms;
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 2_ms);

    EXPECT_GT(gen.completed(), 100u);
    // Latency = service + wire, a little over 100 us.
    EXPECT_GT(gen.latency().percentile(50), 100'000u);
    EXPECT_LT(gen.latency().percentile(50), 115'000u);
    // Closed loop with one worker: throughput ~ 1/latency.
    EXPECT_NEAR(gen.throughputRps(),
                1e9 / static_cast<double>(gen.latency().mean()),
                gen.throughputRps() * 0.1);
    EXPECT_EQ(gen.timeouts(), 0u);
    EXPECT_EQ(gen.validationFailures(), 0u);
}

TEST(LoadGen, ConcurrencyRaisesThroughput)
{
    auto run = [](int conc) {
        sim::Simulator s;
        net::Network nw(s);
        auto &serverNic = nw.addNic("server");
        auto &clientNic = nw.addNic("client");
        EchoService svc{s, serverNic, 0};
        // Service is the NIC tx serialization only: effectively
        // concurrent handling because the loop has no think time.
        svc.start(7000);
        workload::LoadGenConfig cfg;
        cfg.nic = &clientNic;
        cfg.target = {serverNic.node(), 7000};
        cfg.concurrency = conc;
        cfg.warmup = 1_ms;
        cfg.duration = 20_ms;
        workload::LoadGen gen(s, cfg);
        gen.start();
        s.runUntil(gen.windowEnd() + 2_ms);
        return gen.throughputRps();
    };
    double one = run(1);
    double four = run(4);
    EXPECT_GT(four, one * 2.5);
}

TEST(LoadGen, OpenLoopHitsTargetRate)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");
    EchoService svc{s, serverNic, 10_us};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.openRate = 50'000.0;
    cfg.warmup = 5_ms;
    cfg.duration = 100_ms;
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 2_ms);

    EXPECT_NEAR(gen.throughputRps(), 50'000.0, 3'000.0);
    EXPECT_NEAR(static_cast<double>(gen.sent()),
                static_cast<double>(gen.completed()),
                static_cast<double>(gen.sent()) * 0.02);
}

TEST(LoadGen, TimeoutsRecoverFromDrops)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");
    EchoService svc{s, serverNic, 0};
    svc.dropEverything = true;
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.concurrency = 1;
    cfg.warmup = 0;
    cfg.duration = 30_ms;
    cfg.requestTimeout = 5_ms;
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 2_ms);

    EXPECT_EQ(gen.completed(), 0u);
    EXPECT_GE(gen.timeouts(), 5u);
}

/**
 * Regression: a response that outlives its requestTimeout must not be
 * attributed to the *next* outstanding request. Every transfer is
 * delayed beyond the timeout, so each reply arrives while a later
 * request is pending; the generator must discard these under
 * stale_responses instead of recording their (huge) round trips.
 */
TEST(LoadGen, StaleResponsesAreDiscardedNotRecorded)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");

    sim::FaultConfig fc;
    fc.delayRate = 1.0; // every transfer held back...
    fc.delayMin = 5_ms; // ...well past the 2 ms request timeout
    fc.delayMax = 8_ms;
    fc.seed = 42;
    sim::FaultPlan faults(fc);
    nw.setFaultPlan(&faults);

    EchoService svc{s, serverNic, 0};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.concurrency = 1;
    cfg.warmup = 0;
    cfg.duration = 60_ms;
    cfg.requestTimeout = 2_ms;
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 20_ms);

    // Replies take >= 10 ms round trip against a 2 ms timeout: every
    // request times out, and the late replies surface as stale.
    EXPECT_GE(gen.timeouts(), 5u);
    EXPECT_GE(gen.staleResponses(), 1u);
    // The bug recorded stale replies as completions of the *current*
    // request, with round trips far beyond the timeout.
    EXPECT_EQ(gen.completed(), 0u);
    EXPECT_EQ(gen.latency().count(), 0u);
    EXPECT_LE(gen.latency().max(),
              static_cast<std::uint64_t>(cfg.requestTimeout));
}

TEST(LoadGen, ValidationFailuresCounted)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");
    EchoService svc{s, serverNic, 1_us};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.warmup = 0;
    cfg.duration = 5_ms;
    cfg.validate = [](const net::Message &) { return false; };
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 2_ms);
    EXPECT_GT(gen.validationFailures(), 0u);
}

TEST(DataGen, MnistImagesAreDeterministicAndDistinct)
{
    auto a1 = workload::synthMnist(3, 7);
    auto a2 = workload::synthMnist(3, 7);
    auto b = workload::synthMnist(8, 7);
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);
    EXPECT_EQ(a1.size(), 28u * 28u);
    // Images are not blank.
    int lit = 0;
    for (auto px : a1)
        lit += (px > 64);
    EXPECT_GT(lit, 10);
}

TEST(DataGen, FaceImagesKeepPersonIdentity)
{
    auto p1v0 = workload::synthFace(1, 0);
    auto p1v1 = workload::synthFace(1, 1);
    auto p2v0 = workload::synthFace(2, 0);
    EXPECT_EQ(p1v0.size(), 32u * 32u);
    EXPECT_NE(p1v0, p1v1); // variants differ...
    EXPECT_NE(p1v0, p2v0); // ...and persons differ
}

TEST(DataGen, FaceLabelsAreStableTwelveBytes)
{
    auto l1 = workload::faceLabel(5);
    auto l2 = workload::faceLabel(5);
    auto l3 = workload::faceLabel(6);
    EXPECT_EQ(l1, l2);
    EXPECT_NE(l1, l3);
    EXPECT_EQ(l1.size(), 12u);
}

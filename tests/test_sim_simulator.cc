/**
 * @file
 * Unit tests for the event calendar and simulated clock.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"
#include "sim/time.hh"

using namespace lynx::sim;
using namespace lynx::sim::literals;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30_ns, [&] { order.push_back(3); });
    sim.schedule(10_ns, [&] { order.push_back(1); });
    sim.schedule(20_ns, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30_ns);
}

TEST(Simulator, EqualTimestampsFireInFifoOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        sim.schedule(5_us, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, HandlersMayScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            sim.scheduleIn(1_us, chain);
    };
    sim.scheduleIn(1_us, chain);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.now(), 5_us);
}

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator sim;
    Tick seen = 0;
    sim.schedule(123_us, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 123_us);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10_us, [&] { ++fired; });
    sim.schedule(20_us, [&] { ++fired; });
    sim.schedule(30_us, [&] { ++fired; });
    sim.runUntil(20_us);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 20_us);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator sim;
    sim.runUntil(50_ms);
    EXPECT_EQ(sim.now(), 50_ms);
}

TEST(Simulator, StopAbortsTheLoop)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1_us, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(2_us, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.stopped());
    sim.reset_stop();
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents)
{
    Simulator sim;
    for (int i = 0; i < 17; ++i)
        sim.schedule(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 17u);
}

TEST(SimulatorDeath, SchedulingIntoThePastPanics)
{
    // The scheduling-into-the-past check is a hot-path
    // LYNX_DEBUG_ASSERT: it panics in debug/sanitizer builds and
    // compiles out in release, where the event is clamped to now()
    // instead (verified below).
#if LYNX_DEBUG_ASSERTS_ENABLED
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Simulator sim;
    sim.schedule(10_us, [&] {
        EXPECT_DEATH(sim.schedule(5_us, [] {}), "past");
    });
    sim.run();
#else
    Simulator sim;
    Tick firedAt = 0;
    sim.schedule(10_us, [&] {
        sim.schedule(5_us, [&] { firedAt = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(firedAt, 10_us); // clamped, never backwards
#endif
}

TEST(TimeLiterals, ConvertCorrectly)
{
    EXPECT_EQ(1_us, 1000_ns);
    EXPECT_EQ(1_ms, 1000_us);
    EXPECT_EQ(1_s, 1000_ms);
    EXPECT_DOUBLE_EQ(toMicroseconds(1500_ns), 1.5);
    EXPECT_DOUBLE_EQ(toMilliseconds(2500_us), 2.5);
    EXPECT_DOUBLE_EQ(toSeconds(500_ms), 0.5);
}

/**
 * @file
 * Torture test of the mqueue transport: many mqueues share one RC QP
 * (the paper's one-QP-per-accelerator design, §5.1) while both sides
 * pump randomized traffic with random think times. Asserts byte-exact
 * delivery, per-queue FIFO, and credit/ring-state convergence.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "lynx/gio.hh"
#include "lynx/snic_mqueue.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/processor.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using core::AccelQueue;
using core::MqueueKind;
using core::MqueueLayout;
using core::SnicMqueue;

namespace {

std::vector<std::uint8_t>
stampedPayload(std::uint32_t queue, std::uint32_t n, std::size_t len,
               sim::Rng &rng)
{
    std::vector<std::uint8_t> p(std::max<std::size_t>(len, 8));
    for (auto &b : p)
        b = static_cast<std::uint8_t>(rng.below(256));
    p[0] = static_cast<std::uint8_t>(queue);
    p[1] = static_cast<std::uint8_t>(queue >> 8);
    p[2] = static_cast<std::uint8_t>(n);
    p[3] = static_cast<std::uint8_t>(n >> 8);
    p[4] = static_cast<std::uint8_t>(n >> 16);
    p[5] = static_cast<std::uint8_t>(n >> 24);
    return p;
}

struct Stamp
{
    std::uint32_t queue;
    std::uint32_t n;
};

Stamp
readStamp(const std::vector<std::uint8_t> &p)
{
    Stamp s;
    s.queue = p[0] | (static_cast<std::uint32_t>(p[1]) << 8);
    s.n = p[2] | (static_cast<std::uint32_t>(p[3]) << 8) |
          (static_cast<std::uint32_t>(p[4]) << 16) |
          (static_cast<std::uint32_t>(p[5]) << 24);
    return s;
}

} // namespace

class MqueueTorture : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MqueueTorture, DuplexRandomTrafficOverOneQp)
{
    const std::uint64_t seed = GetParam();
    sim::Simulator s;
    pcie::DeviceMemory mem("accel.mem", 8 << 20);
    rdma::QueuePair qp(s, "qp", mem, rdma::RdmaPathModel{});
    sim::CorePool cores(s, "snic", 3);
    sim::Rng geometry(seed);

    const int nQueues = 6;
    const int perQueue = 120;

    struct QueuePairs
    {
        std::unique_ptr<SnicMqueue> snic;
        std::unique_ptr<AccelQueue> accel;
        MqueueLayout layout;
    };
    std::vector<QueuePairs> queues;
    std::uint64_t base = 0;
    for (int i = 0; i < nQueues; ++i) {
        MqueueLayout l{base,
                       static_cast<std::uint32_t>(
                           2 + geometry.below(14)), // 2..15 slots
                       256};
        base += l.totalBytes() + 64;
        QueuePairs q;
        q.layout = l;
        q.snic = std::make_unique<SnicMqueue>(
            s, "mq" + std::to_string(i), qp, l, MqueueKind::Server);
        q.accel = std::make_unique<AccelQueue>(
            s, "gio" + std::to_string(i), mem, l);
        queues.push_back(std::move(q));
    }

    // SNIC -> accel direction: a pusher per queue with random sizes
    // and pacing; the accel side echoes back into the TX ring; a
    // SNIC-side drainer validates order and bytes.
    std::map<std::uint32_t, std::vector<std::vector<std::uint8_t>>>
        sentByQueue;
    int drained = 0;

    auto pusher = [&](int qi) -> sim::Task {
        sim::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(qi));
        auto &q = queues[static_cast<std::size_t>(qi)];
        for (std::uint32_t n = 0; n < perQueue; ++n) {
            auto payload = stampedPayload(
                static_cast<std::uint32_t>(qi), n,
                8 + rng.below(q.layout.maxPayload() - 8), rng);
            sentByQueue[static_cast<std::uint32_t>(qi)].push_back(
                payload);
            for (;;) {
                bool ok = co_await q.snic->rxPush(
                    cores[static_cast<std::size_t>(qi) % 3], payload,
                    n % (q.layout.slots * 2));
                if (ok)
                    break;
                co_await sim::sleep(rng.between(1, 20) * 1_us);
            }
            if (rng.chance(0.4))
                co_await sim::sleep(rng.between(1, 50) * 1_us);
        }
    };
    auto echoer = [&](int qi) -> sim::Task {
        sim::Rng rng(seed * 7 + static_cast<std::uint64_t>(qi));
        auto &q = queues[static_cast<std::size_t>(qi)];
        for (int n = 0; n < perQueue; ++n) {
            core::GioMessage m = co_await q.accel->recv();
            if (rng.chance(0.3))
                co_await sim::sleep(rng.between(1, 30) * 1_us);
            co_await q.accel->send(m.tag, m.payload);
        }
    };
    auto drainer = [&](int qi) -> sim::Task {
        auto &q = queues[static_cast<std::size_t>(qi)];
        std::uint32_t expect = 0;
        while (expect < perQueue) {
            auto txm = co_await q.snic->pollTx(
                cores[static_cast<std::size_t>(qi) % 3]);
            if (!txm) {
                co_await sim::sleep(5_us);
                continue;
            }
            Stamp st = readStamp(txm->payload);
            EXPECT_EQ(st.queue, static_cast<std::uint32_t>(qi));
            EXPECT_EQ(st.n, expect); // per-queue FIFO end to end
            EXPECT_EQ(txm->payload,
                      sentByQueue[static_cast<std::uint32_t>(qi)]
                                 [expect]);
            ++expect;
            ++drained;
            if (q.snic->txCommitPending())
                co_await q.snic->commitTxCons(
                    cores[static_cast<std::size_t>(qi) % 3]);
        }
    };
    for (int qi = 0; qi < nQueues; ++qi) {
        sim::spawn(s, pusher(qi));
        sim::spawn(s, echoer(qi));
        sim::spawn(s, drainer(qi));
    }
    s.run();

    EXPECT_EQ(drained, nQueues * perQueue);
    for (auto &q : queues) {
        EXPECT_EQ(q.snic->stats().counterValue("rx_pushed"),
                  static_cast<std::uint64_t>(perQueue));
        EXPECT_EQ(q.snic->stats().counterValue("tx_popped"),
                  static_cast<std::uint64_t>(perQueue));
        EXPECT_EQ(q.accel->stats().counterValue("rx_msgs"),
                  static_cast<std::uint64_t>(perQueue));
        EXPECT_EQ(q.accel->stats().counterValue("tx_msgs"),
                  static_cast<std::uint64_t>(perQueue));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MqueueTorture,
                         ::testing::Values(3, 17, 1999, 777777));

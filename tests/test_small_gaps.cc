/**
 * @file
 * Small-surface coverage: edge cases of utility APIs not exercised
 * elsewhere (introspection accessors, boundary values, unbind).
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "sim/channel.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

TEST(ChannelIntrospection, WaitingConsumersCount)
{
    sim::Simulator s;
    sim::Channel<int> ch(s);
    EXPECT_EQ(ch.waitingConsumers(), 0u);
    auto consumer = [&]() -> sim::Task { (void)co_await ch.pop(); };
    sim::spawn(s, consumer());
    sim::spawn(s, consumer());
    EXPECT_EQ(ch.waitingConsumers(), 2u);
    ch.tryPush(1);
    ch.tryPush(2);
    s.run();
    EXPECT_EQ(ch.waitingConsumers(), 0u);
}

TEST(Histogram, HugeValuesStayOrdered)
{
    sim::Histogram h;
    const std::uint64_t big = 1ull << 62;
    h.record(big);
    h.record(1);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), big);
    EXPECT_LE(h.percentile(100), big);
    EXPECT_GE(h.percentile(100), big - big / 16);
}

TEST(Histogram, ZeroIsAValidSample)
{
    sim::Histogram h;
    h.record(0, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Rng, DegenerateRanges)
{
    sim::Rng rng(5);
    EXPECT_EQ(rng.between(7, 7), 7u);
    EXPECT_EQ(rng.below(1), 0u);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Nic, UnbindAllowsRebindAndStopsDelivery)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    b.bind(net::Protocol::Udp, 9);
    b.unbind(net::Protocol::Udp, 9);
    // Rebinding the same port must work...
    auto &ep2 = b.bind(net::Protocol::Udp, 9);
    auto sender = [&]() -> sim::Task {
        net::Message m;
        m.src = {a.node(), 1};
        m.dst = {b.node(), 9};
        m.proto = net::Protocol::Udp;
        m.payload = {1};
        co_await a.send(std::move(m));
    };
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(ep2.backlog(), 1u);
    // ...and unbinding again redirects traffic to the drop counter.
    b.unbind(net::Protocol::Udp, 9);
    sim::spawn(s, sender());
    s.run();
    EXPECT_EQ(b.stats().counterValue("rx_no_endpoint"), 1u);
}

TEST(Network, NicOfReturnsAttachedNics)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    EXPECT_EQ(&nw.nicOf(0), &a);
    EXPECT_EQ(&nw.nicOf(1), &b);
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(nw.nicOf(9), "unknown node");
}

TEST(SimulatorEdge, RunOnEmptyCalendarReturnsImmediately)
{
    sim::Simulator s;
    EXPECT_EQ(s.run(), 0u);
    EXPECT_EQ(s.runUntil(0), 0u);
}

TEST(SimulatorEdge, StoppedRunUntilDoesNotAdvanceClock)
{
    sim::Simulator s;
    s.schedule(10_us, [&] { s.stop(); });
    s.schedule(20_us, [] {});
    s.runUntil(100_us);
    EXPECT_EQ(s.now(), 10_us); // stop freezes the clock mid-window
    s.reset_stop();
    s.runUntil(100_us);
    EXPECT_EQ(s.now(), 100_us);
}

#include "sim/trace.hh"

TEST(Trace, CategoriesGateEmission)
{
    sim::TraceControl::reset();
    EXPECT_FALSE(sim::TraceControl::enabled("mqueue"));
    sim::TraceControl::enable("mqueue");
    EXPECT_TRUE(sim::TraceControl::enabled("mqueue"));
    EXPECT_FALSE(sim::TraceControl::enabled("rdma"));
    sim::TraceControl::enable("all");
    EXPECT_TRUE(sim::TraceControl::enabled("rdma"));
    sim::TraceControl::disable("all");
    sim::TraceControl::disable("mqueue");
    EXPECT_FALSE(sim::TraceControl::enabled("mqueue"));
    sim::TraceControl::reset();
}

TEST(Trace, MacroEvaluatesLazily)
{
    // The message expression must not run for disabled categories.
    sim::TraceControl::reset();
    sim::Simulator s;
    int evaluations = 0;
    auto cost = [&] {
        ++evaluations;
        return 1;
    };
    LYNX_TRACE(s, "never-enabled", "x=", cost());
    EXPECT_EQ(evaluations, 0);
    sim::TraceControl::enable("now-enabled");
    LYNX_TRACE(s, "now-enabled", "x=", cost());
    EXPECT_EQ(evaluations, 1);
    sim::TraceControl::reset();
}

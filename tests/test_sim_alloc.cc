/**
 * @file
 * Allocation-count harness: proves the steady-state event hot path is
 * heap-allocation-free, so the alloc-free property of the engine
 * overhaul (timing wheel + EventFn + pooled payloads + pooled frames)
 * cannot silently regress.
 *
 * The global operator new/delete are replaced with counting wrappers.
 * An echo scenario (client NIC <-> echo server over the fabric) is
 * warmed up until every pool, ring and wheel bucket has its capacity,
 * then a measured window of round trips runs with the allocation
 * counter snapshotted on both sides. Steady state must perform ZERO
 * heap allocations — per event, per message, per coroutine frame.
 *
 * In the sanitizer lane the slab pool deliberately passes every
 * allocation through to the system allocator (LYNX_POOL_PASSTHROUGH),
 * so the zero-alloc assertion is skipped there.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "lynx/tenant.hh"
#include "net/message.hh"
#include "net/network.hh"
#include "net/nic.hh"
#include "net/payload.hh"
#include "sim/event.hh"
#include "sim/pool.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

std::uint64_t g_allocCount = 0;

} // namespace

// Counting wrappers around the global allocator. All variants must be
// covered: the engine uses both plain and aligned forms.
void *
operator new(std::size_t n)
{
    ++g_allocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    ++g_allocCount;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (n + static_cast<std::size_t>(align) -
                                      1) &
                                         ~(static_cast<std::size_t>(align) -
                                           1)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

/** Round-trip counts: warmup fills pools/rings, window is measured. */
constexpr int kWarmupRounds = 256;
constexpr int kMeasuredRounds = 512;

struct EchoProbe
{
    std::uint64_t allocsAtWindowStart = 0;
    std::uint64_t allocsAtWindowEnd = 0;
    int completed = 0;
};

sim::Task
echoServer(net::Nic &nic, std::uint16_t port)
{
    net::Endpoint &ep = nic.bind(net::Protocol::Udp, port);
    for (;;) {
        net::Message m = co_await ep.recv();
        net::Address from = m.src;
        m.src = m.dst;
        m.dst = from;
        co_await nic.send(std::move(m));
    }
}

sim::Task
echoClient(net::Nic &nic, net::Address target, EchoProbe &probe,
           const std::vector<std::uint8_t> &request)
{
    net::Endpoint &ep = nic.bind(net::Protocol::Udp, 9001);
    for (int i = 0; i < kWarmupRounds + kMeasuredRounds; ++i) {
        if (i == kWarmupRounds)
            probe.allocsAtWindowStart = g_allocCount;
        net::Message m;
        m.src = {nic.node(), 9001};
        m.dst = target;
        m.payload = request; // copies into a recycled pool block
        m.seq = static_cast<std::uint64_t>(i);
        co_await nic.send(std::move(m));
        net::Message r = co_await ep.recv();
        if (r.payload.size() == request.size())
            ++probe.completed;
    }
    probe.allocsAtWindowEnd = g_allocCount;
}

TEST(AllocFreeHotPath, SteadyStateEchoEventLoopDoesNotAllocate)
{
#if defined(LYNX_POOL_PASSTHROUGH)
    GTEST_SKIP() << "pool passthrough lane: every allocation is "
                    "routed to the system allocator by design";
#else
    sim::Simulator s;
    net::Network network(s);
    net::Nic &client = network.addNic("client");
    net::Nic &server = network.addNic("server");

    EchoProbe probe;
    const std::vector<std::uint8_t> request(64, 0x42);
    sim::spawn(s, echoServer(server, 7));
    sim::spawn(s, echoClient(client, {server.node(), 7}, probe, request));
    s.run();

    EXPECT_EQ(probe.completed, kWarmupRounds + kMeasuredRounds);
    EXPECT_EQ(probe.allocsAtWindowEnd - probe.allocsAtWindowStart, 0u)
        << "steady-state echo hot path allocated "
        << (probe.allocsAtWindowEnd - probe.allocsAtWindowStart)
        << " times over " << kMeasuredRounds << " round trips";
#endif
}

TEST(AllocFreeHotPath, HotEventShapesFitInline)
{
    // The two delivery lambdas the NIC/network hot path schedules: a
    // by-value Message plus one pointer. If Message outgrows the
    // inline buffer these become per-event pool trips.
    net::Network *net = nullptr;
    net::Nic *dst = nullptr;
    net::Message m;
    auto routeFn = [net, mm = std::move(m)]() mutable { (void)net; };
    net::Message m2;
    auto deliverFn = [dst, mm = std::move(m2)]() mutable { (void)dst; };
    static_assert(sim::EventFn::fitsInline<decltype(routeFn)>);
    static_assert(sim::EventFn::fitsInline<decltype(deliverFn)>);
    static_assert(sizeof(net::Message) == 64);
    SUCCEED();
}

/** The per-message tenant accounting path — admission, ring-tag
 *  quota notes, WRR picks and generation-checked finishes — must
 *  never build a `tenant.<id>.*` metric name or touch the registry:
 *  every handle is resolved once at registration (lynx/tenant.hh).
 *  Registration itself may allocate; the cycle after warmup must
 *  not. */
TEST(AllocFreeHotPath, TenantAccountingHotPathDoesNotAllocate)
{
#if defined(LYNX_POOL_PASSTHROUGH)
    GTEST_SKIP() << "pool passthrough lane";
#else
    sim::Simulator s;
    core::TenantConfig cfg;
    cfg.enabled = true;
    cfg.autoRegister = false;
    core::TenantTable table(s, cfg);
    core::TenantQuota q;
    q.weight = 3;
    q.maxInFlight = 8;
    q.mqueueQuota = 4;
    core::TenantId a = table.add(q);
    core::TenantId b = table.add();
    core::WrrPicker wrr;

    auto cycle = [&] {
        table.admit(a);
        table.admit(b);
        table.noteTagAlloc(a);
        (void)table.belowTagQuota(a);
        table.noteTagRelease(a);
        wrr.pick(2, [&](std::size_t i) {
            return table.weight(static_cast<core::TenantId>(i + 1));
        });
        table.finish(a, table.generation(a), 3_us);
        table.finish(b, table.generation(b), 3_us);
    };
    for (int i = 0; i < 64; ++i) // fill histogram buckets, WRR credit
        cycle();
    const std::uint64_t before = g_allocCount;
    for (int i = 0; i < 512; ++i)
        cycle();
    EXPECT_EQ(g_allocCount - before, 0u)
        << "tenant accounting hot path allocated "
        << (g_allocCount - before) << " times over 512 cycles";
#endif
}

TEST(AllocFreeHotPath, PoolRecyclesBlocks)
{
#if defined(LYNX_POOL_PASSTHROUGH)
    GTEST_SKIP() << "pool passthrough lane";
#else
    sim::Pool &pool = sim::Pool::instance();
    void *a = pool.allocate(100);
    pool.deallocate(a);
    const std::uint64_t hitsBefore = pool.stats().freelistHits;
    void *b = pool.allocate(100); // same class: must reuse the block
    EXPECT_EQ(b, a);
    EXPECT_EQ(pool.stats().freelistHits, hitsBefore + 1);
    pool.deallocate(b);

    // Oversize requests pass through but stay header-tagged.
    void *big = pool.allocate(sim::Pool::kMaxBlockSize + 1);
    ASSERT_NE(big, nullptr);
    pool.deallocate(big);
#endif
}

TEST(AllocFreeHotPath, PayloadReusesItsBlockAcrossAssignments)
{
#if defined(LYNX_POOL_PASSTHROUGH)
    GTEST_SKIP() << "pool passthrough lane";
#else
    const std::vector<std::uint8_t> small(40, 1);
    net::Payload p;
    p = small;
    const std::uint8_t *block = p.data();
    for (int i = 0; i < 16; ++i) {
        p = small; // same size class: no pool churn, same block
        EXPECT_EQ(p.data(), block);
    }
    net::Payload moved = std::move(p);
    EXPECT_EQ(moved.data(), block);
    EXPECT_EQ(moved.size(), small.size());
#endif
}

TEST(AllocFreeHotPath, PayloadSemanticsMatchVector)
{
    net::Payload p{1, 2, 3};
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p[2], 3);

    net::Payload copy = p;
    EXPECT_EQ(copy, p);
    copy.push_back(4);
    EXPECT_NE(copy, p);
    EXPECT_EQ(copy.at(3), 4);

    const std::vector<std::uint8_t> v{1, 2, 3};
    EXPECT_EQ(p, v);
    EXPECT_EQ(v, p);

    p.resize(5);
    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p[4], 0); // resize zero-fills

    std::vector<std::uint8_t> tail{9, 9};
    p.insert(p.end(), tail.begin(), tail.end());
    EXPECT_EQ(p.size(), 7u);
    EXPECT_EQ(p[6], 9);

    p.assign(tail.begin(), tail.end());
    EXPECT_EQ(p, tail);

    EXPECT_EQ(p.toVector(), tail);

    std::span<const std::uint8_t> view = p;
    EXPECT_EQ(view.size(), 2u);
    EXPECT_EQ(view[0], 9);
}

} // namespace

/**
 * @file
 * The paper's §6.4 scenario: a multi-tier Face Verification server.
 *
 * The GPU frontend receives (label, image) requests over UDP,
 * fetches the enrolled image for the label from a memcached-like
 * backend over TCP *from the GPU* through client mqueues, runs the
 * LBP comparison, and answers — all without host CPU involvement.
 *
 *   $ ./face_verification
 */

#include <cstdio>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "apps/kvstore.hh"
#include "host/node.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/datagen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

int
main()
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bluefield(s, network, "bf0");
    net::Nic &clientNic = network.addNic("client");
    host::Node dbHost(s, network, "db-host");
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    // --- Database tier: enroll 32 identities --------------------------
    apps::KvStore db;
    for (std::uint32_t person = 0; person < 32; ++person)
        db.set(workload::faceLabel(person),
               workload::synthFace(person, /*variant=*/0));
    apps::KvServerConfig kvCfg;
    kvCfg.nic = &dbHost.nic();
    kvCfg.proto = net::Protocol::Tcp;
    kvCfg.stack = calibration::vmaXeon();
    kvCfg.cores = {&dbHost.cores()[0], &dbHost.cores()[1]};
    kvCfg.opCost = calibration::memcachedOpCostXeon;
    apps::KvServer kvServer(s, db, kvCfg);
    kvServer.start();

    // --- Frontend tier: Lynx + GPU workers ----------------------------
    // The paper uses 28 server mqueues round-robin (§4.3); each
    // worker block owns one server mqueue and one client mqueue.
    constexpr int workers = 28;
    core::Runtime lynxRt(s, bluefield.lynxRuntimeConfig());
    auto &accel = lynxRt.addAccelerator("k40m", gpu.memory(),
                                        rdma::RdmaPathModel{});
    core::ServiceConfig svcCfg;
    svcCfg.name = "facever";
    svcCfg.port = 7100;
    svcCfg.queuesPerAccel = workers;
    auto &svc = lynxRt.addService(svcCfg);
    auto serverQs = lynxRt.makeAccelQueues(svc, accel);

    std::vector<std::unique_ptr<core::AccelQueue>> dbQs;
    for (int i = 0; i < workers; ++i) {
        auto ref = lynxRt.addClientQueue(
            accel, "db.cq" + std::to_string(i),
            {dbHost.id(), kvCfg.port}, net::Protocol::Tcp);
        dbQs.push_back(lynxRt.makeAccelQueue(ref));
        sim::spawn(s, apps::runFaceVerWorker(gpu, *serverQs[i],
                                             *dbQs[i]));
    }
    lynxRt.start();

    // --- Clients ------------------------------------------------------
    auto &ep = clientNic.bind(net::Protocol::Udp, 40000);
    int matches = 0, rejects = 0, unknown = 0;
    auto client = [&]() -> sim::Task {
        for (std::uint32_t i = 0; i < 30; ++i) {
            std::uint32_t claim = i % 32;
            bool genuine = (i % 3 != 2);
            std::uint32_t probePerson = genuine ? claim : (claim + 7) % 32;
            std::string label = (i % 10 == 9)
                                    ? "nobody-here!"
                                    : workload::faceLabel(claim);
            auto img = workload::synthFace(probePerson, 1 + i);

            net::Message m;
            m.src = {clientNic.node(), 40000};
            m.dst = {bluefield.node(), 7100};
            m.proto = net::Protocol::Udp;
            m.payload.assign(label.begin(), label.end());
            m.payload.insert(m.payload.end(), img.begin(), img.end());
            m.sentAt = s.now();
            co_await clientNic.send(std::move(m));
            net::Message r = co_await ep.recv();
            switch (static_cast<apps::FaceVerResult>(r.payload[0])) {
              case apps::FaceVerResult::Match: ++matches; break;
              case apps::FaceVerResult::NoMatch: ++rejects; break;
              default: ++unknown; break;
            }
        }
    };
    sim::spawn(s, client());
    s.run();

    std::printf("face verification over Lynx (GPU <-> memcached via "
                "client mqueues):\n");
    std::printf("  verified: %d   rejected: %d   unknown label: %d\n",
                matches, rejects, unknown);
    std::printf("  kv backend served %llu gets\n",
                static_cast<unsigned long long>(
                    kvServer.stats().counterValue("gets")));
    return 0;
}

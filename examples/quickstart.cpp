/**
 * @file
 * Quickstart: the smallest complete Lynx deployment.
 *
 * One Bluefield SmartNIC runs the Lynx runtime; one (simulated) GPU
 * runs a persistent echo kernel that receives requests through an
 * mqueue in its own memory and answers without any host CPU on the
 * data path. A client sends a few datagrams and prints the replies.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

int
main()
{
    sim::Simulator s;
    net::Network network(s);

    // The SmartNIC is its own network node (multi-homed mode).
    snic::Bluefield bluefield(s, network, "bf0");
    net::Nic &clientNic = network.addNic("client");

    // A GPU on the server's PCIe fabric; Lynx reaches its memory
    // with one-sided RDMA through the NIC's engine.
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    // --- Lynx setup (this is the host CPU's only job) -------------
    core::Runtime lynxRt(s, bluefield.lynxRuntimeConfig());
    auto &accel = lynxRt.addAccelerator("k40m", gpu.memory(),
                                        rdma::RdmaPathModel{});
    core::ServiceConfig svcCfg;
    svcCfg.name = "echo";
    svcCfg.port = 7000;
    auto &svc = lynxRt.addService(svcCfg);

    // Hand the mqueue to the accelerator-side code (gio) and start
    // the persistent kernel: a single block that echoes requests
    // after 50 us of emulated processing.
    auto queues = lynxRt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runEchoBlock(gpu, *queues[0], 50_us));
    lynxRt.start();
    // From here on, no host CPU touches a single request.

    // --- A client ---------------------------------------------------
    auto &ep = clientNic.bind(net::Protocol::Udp, 40000);
    auto client = [&]() -> sim::Task {
        for (int i = 0; i < 5; ++i) {
            net::Message m;
            m.src = {clientNic.node(), 40000};
            m.dst = {bluefield.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = {static_cast<std::uint8_t>('a' + i), 'y', 'n',
                         'x'};
            m.sentAt = s.now();
            sim::Tick t0 = s.now();
            co_await clientNic.send(std::move(m));
            net::Message r = co_await ep.recv();
            std::printf("reply %d: \"%c%c%c%c\"  round-trip %.1f us\n",
                        i, r.payload[0], r.payload[1], r.payload[2],
                        r.payload[3],
                        sim::toMicroseconds(s.now() - t0));
        }
    };
    sim::spawn(s, client());
    s.run();

    std::printf("simulated time: %.3f ms, events: %llu\n",
                sim::toMilliseconds(s.now()),
                static_cast<unsigned long long>(s.eventsExecuted()));
    return 0;
}

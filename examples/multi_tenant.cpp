/**
 * @file
 * Multi-tenancy (paper §4.5): "Lynx runtime can be shared among
 * multiple servers ... users may use different accelerators for
 * their applications, e.g., subscribing for Lynx' services."
 *
 * One Bluefield runtime hosts two independent services on two
 * accelerators: a LeNet inference service (tenant A) and a
 * vector-scale service (tenant B), with fully separate mqueues and
 * tag state.
 *
 *   $ ./multi_tenant
 */

#include <cstdio>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/datagen.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

int
main()
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bluefield(s, network, "bf0");
    net::Nic &clientA = network.addNic("tenantA");
    net::Nic &clientB = network.addNic("tenantB");
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpuA(s, "k40m-a", fabric);
    accel::Gpu gpuB(s, "k40m-b", fabric);
    apps::LeNet model;

    core::Runtime lynxRt(s, bluefield.lynxRuntimeConfig());
    auto &accelA = lynxRt.addAccelerator("k40m-a", gpuA.memory(),
                                         rdma::RdmaPathModel{});
    auto &accelB = lynxRt.addAccelerator("k40m-b", gpuB.memory(),
                                         rdma::RdmaPathModel{});

    // Tenant isolation: each service is pinned to its tenant's
    // accelerator ("full state protection among them", §4.5).
    core::ServiceConfig aCfg;
    aCfg.name = "tenantA.lenet";
    aCfg.port = 7000;
    aCfg.accels = {&accelA};
    auto &svcA = lynxRt.addService(aCfg);
    core::ServiceConfig bCfg;
    bCfg.name = "tenantB.scale";
    bCfg.port = 7001;
    bCfg.queuesPerAccel = 2;
    bCfg.accels = {&accelB};
    auto &svcB = lynxRt.addService(bCfg);

    auto aQs = lynxRt.makeAccelQueues(svcA, accelA);
    sim::spawn(s, apps::runLenetServer(gpuA, *aQs[0], model));
    auto bQs = lynxRt.makeAccelQueues(svcB, accelB);
    for (auto &q : bQs)
        sim::spawn(s, apps::runVectorScaleBlock(gpuB, *q, 7, 20_us));
    lynxRt.start();

    // Drive both tenants concurrently.
    workload::LoadGenConfig la;
    la.nic = &clientA;
    la.target = {bluefield.node(), 7000};
    la.concurrency = 1;
    la.warmup = 5_ms;
    la.duration = 100_ms;
    la.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return workload::synthMnist(static_cast<int>(seq % 10), seq);
    };
    workload::LoadGen genA(s, la);

    workload::LoadGenConfig lb;
    lb.nic = &clientB;
    lb.target = {bluefield.node(), 7001};
    lb.concurrency = 2;
    lb.warmup = 5_ms;
    lb.duration = 100_ms;
    lb.makeRequest = [](std::uint64_t, sim::Rng &rng) {
        std::vector<std::uint8_t> v(256 * 4);
        for (auto &b : v)
            b = static_cast<std::uint8_t>(rng.below(256));
        return v;
    };
    workload::LoadGen genB(s, lb);

    genA.start();
    genB.start();
    s.runUntil(genA.windowEnd() + 10_ms);

    std::printf("two tenants sharing one Lynx runtime:\n");
    std::printf("  tenant A (LeNet, GPU A): %.0f req/s, p90 %.0f us\n",
                genA.throughputRps(),
                sim::toMicroseconds(genA.latency().percentile(90)));
    std::printf("  tenant B (vector-scale, GPU B): %.0f req/s, "
                "p90 %.0f us\n",
                genB.throughputRps(),
                sim::toMicroseconds(genB.latency().percentile(90)));
    std::printf("  cross-talk: tenant A throughput within a few %% of "
                "its solo 3500 req/s ceiling\n");
    return 0;
}

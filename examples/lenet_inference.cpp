/**
 * @file
 * The paper's §6.3 scenario: a GPU-only LeNet digit-recognition
 * service driven entirely by the SmartNIC.
 *
 * A persistent kernel polls the server mqueue and runs the network's
 * per-layer kernels with dynamic parallelism — "the resulting
 * implementation does not run any application logic on the CPU". The
 * example classifies one image of each digit, then measures
 * throughput and latency with a closed-loop client.
 *
 *   $ ./lenet_inference
 */

#include <cstdio>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "apps/lenet_train.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/datagen.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

int
main()
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bluefield(s, network, "bf0");
    net::Nic &clientNic = network.addNic("client");
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    // Train the model on the synthetic digit set first (the paper
    // uses a TensorFlow-trained model; we cannot ship MNIST weights,
    // so we train the same architecture from scratch — ~3 s).
    std::printf("training LeNet-5 on synthetic digits...\n");
    apps::LeNetTrainer trainer(7);
    auto trainSet = apps::synthTrainingSet(30, 0);
    double loss = trainer.train(trainSet, 3, 16, 0.08f, 1);
    auto heldOut = apps::synthTrainingSet(8, 500);
    std::printf("  final loss %.3f, held-out accuracy %.0f%%\n", loss,
                trainer.accuracy(heldOut) * 100);
    apps::LeNet model(trainer.params());

    core::Runtime lynxRt(s, bluefield.lynxRuntimeConfig());
    auto &accel = lynxRt.addAccelerator("k40m", gpu.memory(),
                                        rdma::RdmaPathModel{});
    core::ServiceConfig svcCfg;
    svcCfg.name = "lenet";
    svcCfg.port = 7000;
    auto &svc = lynxRt.addService(svcCfg);
    auto queues = lynxRt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runLenetServer(gpu, *queues[0], model));
    lynxRt.start();

    // Classify one synthetic image per digit and check against the
    // locally evaluated model.
    auto &ep = clientNic.bind(net::Protocol::Udp, 40000);
    auto demo = [&]() -> sim::Task {
        std::printf("digit classification over the network:\n");
        for (int d = 0; d < 10; ++d) {
            auto img = workload::synthMnist(d, 1000 + d);
            net::Message m;
            m.src = {clientNic.node(), 40000};
            m.dst = {bluefield.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = img;
            m.sentAt = s.now();
            co_await clientNic.send(std::move(m));
            net::Message r = co_await ep.recv();
            std::printf("  image[digit-%d] -> class %d %s\n", d,
                        r.payload[0],
                        r.payload[0] == d ? "(correct)"
                                          : "(misclassified)");
        }
    };
    sim::spawn(s, demo());
    s.run();

    // Load phase: closed-loop client at one outstanding request, as
    // in the paper's latency-vs-throughput measurement.
    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.basePort = 41000;
    lg.target = {bluefield.node(), 7000};
    lg.concurrency = 1;
    lg.warmup = 10_ms;
    lg.duration = 200_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return workload::synthMnist(static_cast<int>(seq % 10), seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(s.now() + gen.windowEnd() + 5_ms);

    std::printf("\nload phase (Lynx on Bluefield, 1 GPU):\n");
    std::printf("  throughput : %.0f req/s (paper: ~3500)\n",
                gen.throughputRps());
    std::printf("  p50 latency: %.0f us\n",
                sim::toMicroseconds(gen.latency().percentile(50)));
    std::printf("  p90 latency: %.0f us (paper: ~300)\n",
                sim::toMicroseconds(gen.latency().percentile(90)));
    std::printf("  p99 latency: %.0f us\n",
                sim::toMicroseconds(gen.latency().percentile(99)));
    return 0;
}

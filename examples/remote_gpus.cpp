/**
 * @file
 * Scaleout beyond one machine (paper §5.5, Fig. 8b): one SmartNIC
 * drives GPUs in three physical servers. Remote accelerators differ
 * from local ones only in their RDMA path ("all what is required
 * from Lynx is to change the accelerator's host IP").
 *
 *   $ ./remote_gpus
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "host/node.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/datagen.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

int
main()
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bluefield(s, network, "bf0");
    net::Nic &clientNic = network.addNic("client");

    // Three servers; only server0 hosts the SNIC. K80s, as in the
    // paper's 12-GPU experiment.
    struct Server
    {
        std::unique_ptr<host::Node> node;
        std::vector<std::unique_ptr<accel::Gpu>> gpus;
    };
    accel::GpuConfig k80;
    k80.blockSlots = 208;
    k80.clockScale = calibration::k80ClockScale;

    std::vector<Server> servers;
    for (int m = 0; m < 3; ++m) {
        Server srv;
        srv.node = std::make_unique<host::Node>(
            s, network, "server" + std::to_string(m));
        for (int g = 0; g < 4; ++g) {
            srv.gpus.push_back(std::make_unique<accel::Gpu>(
                s, "k80-" + std::to_string(m) + "." + std::to_string(g),
                srv.node->fabric(), k80));
        }
        servers.push_back(std::move(srv));
    }

    // Register all 12 GPUs: local ones over PCIe p2p, remote ones
    // through their servers' RDMA NICs (+4 us each way).
    core::Runtime lynxRt(s, bluefield.lynxRuntimeConfig());
    rdma::RdmaPathModel local;
    auto remote = local.viaNetwork(calibration::rdmaRemoteExtraOneWay);
    std::vector<core::AccelHandle *> handles;
    for (std::size_t m = 0; m < servers.size(); ++m) {
        for (auto &gpu : servers[m].gpus) {
            handles.push_back(&lynxRt.addAccelerator(
                gpu->name(), gpu->memory(), m == 0 ? local : remote));
        }
    }

    core::ServiceConfig svcCfg;
    svcCfg.name = "lenet";
    svcCfg.port = 7000;
    auto &svc = lynxRt.addService(svcCfg);

    apps::LeNet model;
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    std::size_t gi = 0;
    for (std::size_t m = 0; m < servers.size(); ++m) {
        for (auto &gpu : servers[m].gpus) {
            auto qs = lynxRt.makeAccelQueues(svc, *handles[gi++]);
            sim::spawn(s, apps::runLenetServer(*gpu, *qs[0], model));
            for (auto &q : qs)
                queues.push_back(std::move(q));
        }
    }
    lynxRt.start();

    // Saturating closed-loop load (several workers per GPU).
    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bluefield.node(), 7000};
    lg.concurrency = 24;
    lg.warmup = 10_ms;
    lg.duration = 150_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return workload::synthMnist(static_cast<int>(seq % 10), seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);

    std::printf("12 K80 GPUs (4 local + 8 remote) behind one "
                "Bluefield:\n");
    std::printf("  aggregate throughput: %.0f req/s "
                "(paper Fig. 8b: ~12 x 3300 = ~39600, linear)\n",
                gen.throughputRps());
    std::printf("  p50 latency: %.0f us  p99: %.0f us\n",
                sim::toMicroseconds(gen.latency().percentile(50)),
                sim::toMicroseconds(gen.latency().percentile(99)));
    std::printf("  host CPUs of all three servers stayed idle: ");
    bool idle = true;
    for (auto &srv : servers) {
        for (std::size_t c = 0; c < srv.node->cores().size(); ++c)
            idle = idle && srv.node->cores()[c].busyTime() == 0;
    }
    std::printf("%s\n", idle ? "yes" : "no");
    return 0;
}

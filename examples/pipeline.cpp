/**
 * @file
 * Accelerator composition — the paper's stated next step ("Lynx will
 * serve as a stepping stone for a general infrastructure targeting
 * multi-accelerator systems which will enable efficient composition
 * of accelerators and CPUs in a single application", §1).
 *
 * Two accelerated services on one Lynx runtime form a pipeline with
 * zero host-CPU involvement:
 *
 *   client --UDP--> [GPU A: denoise/normalize]
 *                      |  client mqueue --> the SNIC's own LeNet port
 *                      v
 *                   [GPU B: LeNet inference]  --> back through A
 *
 * GPU A cleans up a noisy image (real 3x3 median filter), sends the
 * cleaned image to the LeNet service through a client mqueue whose
 * backend address is the SNIC itself, and returns the recognized
 * digit to the client.
 *
 *   $ ./pipeline
 */

#include <algorithm>
#include <cstdio>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/datagen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

/** Real 3x3 median filter over a 28x28 grayscale image. */
std::vector<std::uint8_t>
median3x3(const std::vector<std::uint8_t> &img)
{
    const int dim = 28;
    std::vector<std::uint8_t> out(img.size());
    for (int y = 0; y < dim; ++y) {
        for (int x = 0; x < dim; ++x) {
            std::uint8_t window[9];
            int n = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    int yy = std::clamp(y + dy, 0, dim - 1);
                    int xx = std::clamp(x + dx, 0, dim - 1);
                    window[n++] = img[static_cast<std::size_t>(
                        yy * dim + xx)];
                }
            }
            std::nth_element(window, window + 4, window + 9);
            out[static_cast<std::size_t>(y * dim + x)] = window[4];
        }
    }
    return out;
}

/** GPU A's persistent block: denoise, then consult the LeNet tier. */
sim::Task
denoiseFrontend(accel::Gpu &gpu, core::AccelQueue &serverQ,
                core::AccelQueue &lenetQ)
{
    co_await gpu.slots().acquire(1);
    std::uint32_t nextTag = 1;
    for (;;) {
        core::GioMessage m = co_await serverQ.recv();
        if (m.payload.size() != apps::LeNet::imageBytes) {
            std::vector<std::uint8_t> err{0xff};
            co_await serverQ.send(m.tag, err, 1);
            continue;
        }
        // ~40 us of GPU time for the filter kernel; real result.
        co_await sim::sleep(gpu.scaled(40_us));
        auto cleaned = median3x3(m.payload);

        // Second pipeline stage through a client mqueue whose backend
        // is this very SNIC's LeNet service.
        co_await lenetQ.send(nextTag++, cleaned);
        core::GioMessage verdict = co_await lenetQ.recv();
        co_await serverQ.send(m.tag, verdict.payload, verdict.err);
    }
}

} // namespace

int
main()
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bluefield(s, network, "bf0");
    net::Nic &clientNic = network.addNic("client");
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpuA(s, "k40m-a", fabric);
    accel::Gpu gpuB(s, "k40m-b", fabric);
    apps::LeNet model;

    core::Runtime lynxRt(s, bluefield.lynxRuntimeConfig());
    auto &accelA = lynxRt.addAccelerator("k40m-a", gpuA.memory(),
                                         rdma::RdmaPathModel{});
    auto &accelB = lynxRt.addAccelerator("k40m-b", gpuB.memory(),
                                         rdma::RdmaPathModel{});

    core::ServiceConfig frontCfg;
    frontCfg.name = "denoise";
    frontCfg.port = 7000;
    frontCfg.accels = {&accelA};
    auto &front = lynxRt.addService(frontCfg);

    core::ServiceConfig lenetCfg;
    lenetCfg.name = "lenet";
    lenetCfg.port = 7001;
    lenetCfg.accels = {&accelB};
    auto &lenet = lynxRt.addService(lenetCfg);

    // GPU A's client mqueue points at the SNIC's own LeNet port:
    // stage-to-stage traffic loops through the SNIC, never the host.
    auto lenetRef = lynxRt.addClientQueue(
        accelA, "a-to-lenet", {bluefield.node(), 7001},
        net::Protocol::Udp);

    auto frontQs = lynxRt.makeAccelQueues(front, accelA);
    auto lenetQA = lynxRt.makeAccelQueue(lenetRef);
    sim::spawn(s, denoiseFrontend(gpuA, *frontQs[0], *lenetQA));

    auto lenetQs = lynxRt.makeAccelQueues(lenet, accelB);
    sim::spawn(s, apps::runLenetServer(gpuB, *lenetQs[0], model));
    lynxRt.start();

    // Client: send noisy digits; verify against the local pipeline.
    auto &ep = clientNic.bind(net::Protocol::Udp, 40000);
    int agree = 0;
    auto client = [&]() -> sim::Task {
        std::printf("noisy image -> [GPU A denoise] -> [GPU B LeNet]"
                    " -> digit\n");
        sim::Rng rng(7);
        for (int d = 0; d < 10; ++d) {
            auto img = workload::synthMnist(d, 5);
            // Salt-and-pepper noise the frontend must remove.
            for (int i = 0; i < 60; ++i)
                img[rng.below(img.size())] = rng.chance(0.5) ? 255 : 0;
            int expect = model.classify(median3x3(img));

            net::Message m;
            m.src = {clientNic.node(), 40000};
            m.dst = {bluefield.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = img;
            m.sentAt = s.now();
            sim::Tick t0 = s.now();
            co_await clientNic.send(std::move(m));
            net::Message r = co_await ep.recv();
            bool ok = r.payload.size() == 1 && r.payload[0] == expect;
            agree += ok;
            std::printf("  digit-%d -> class %d  %-22s %.0f us\n", d,
                        r.payload.empty() ? -1 : r.payload[0],
                        ok ? "(matches local pipeline)" : "(MISMATCH!)",
                        sim::toMicroseconds(s.now() - t0));
        }
    };
    sim::spawn(s, client());
    s.run();
    std::printf("%d/10 verdicts match the locally-computed pipeline; "
                "host CPUs untouched on the data path.\n", agree);
    return agree == 10 ? 0 : 1;
}
